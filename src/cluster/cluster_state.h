// Mutable state of the combined training + inference GPU fleet.
//
// ClusterState owns every server and keeps a two-way index between jobs and
// the servers hosting their workers. All placement mutations go through this
// class so the job-side and server-side views can never diverge. It also
// implements the whitelist semantics of capacity loaning (§6): loaning moves
// a server from the inference pool to the on-loan pool (visible to the
// training scheduler), returning moves it back once it is idle.
//
// Capacity accounting is incremental: per-pool GPU totals, usage, and
// per-GPU-type free counts, plus sorted per-pool server-id membership lists,
// are maintained in O(1) (amortized) at every mutation point. All capacity
// queries are counter reads and pool listings return the maintained index —
// nothing on the query path scans the server vector. AuditInvariants()
// recomputes everything from scratch and is wired into the tests.
#ifndef SRC_CLUSTER_CLUSTER_STATE_H_
#define SRC_CLUSTER_CLUSTER_STATE_H_

#include <array>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/cluster/server.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace lyra {

// Job-side view: which servers host this job and how many GPUs on each.
struct JobPlacement {
  std::map<ServerId, GpuShare> shares;

  int total_gpus() const;
  int base_gpus() const;
  int flexible_gpus() const;
  int num_servers() const { return static_cast<int>(shares.size()); }
};

class ClusterState {
 public:
  ClusterState() = default;

  // Non-copyable: the state is large and holds identity; clone explicitly
  // via Clone() where what-if analysis needs a scratch copy.
  ClusterState(const ClusterState&) = delete;
  ClusterState& operator=(const ClusterState&) = delete;
  ClusterState(ClusterState&&) = default;
  ClusterState& operator=(ClusterState&&) = default;

  ClusterState Clone() const;

  // --- Topology -------------------------------------------------------------

  ServerId AddServer(GpuType gpu_type, int num_gpus, ServerPool pool);

  const Server& server(ServerId id) const;
  int num_servers() const { return static_cast<int>(servers_.size()); }
  const std::vector<Server>& servers() const { return servers_; }

  // Ids of the servers in the pool, ascending. Returns the maintained
  // membership index: O(1), no allocation. The reference is invalidated by
  // AddServer/LoanServer/ReturnServer — callers that move servers between
  // pools while iterating must copy first.
  const std::vector<ServerId>& ServersInPool(ServerPool pool) const {
    return pool_servers_[PoolIndex(pool)];
  }

  int NumServersInPool(ServerPool pool) const {
    return static_cast<int>(pool_servers_[PoolIndex(pool)].size());
  }

  // Servers visible to the training scheduler: the training pool plus the
  // on-loan pool (the training whitelist).
  std::vector<ServerId> TrainingVisibleServers() const;

  // --- Placement ------------------------------------------------------------

  // Places `gpus` GPUs of the job on the server. Requires free capacity.
  void Place(JobId job, ServerId server, int gpus, bool flexible);

  // Removes the job from every server it occupies (a preemption or a
  // completion). No-op if the job has no placement.
  void RemoveJob(JobId job);

  // Removes up to `gpus` flexible GPUs of the job from the given server;
  // returns the number removed.
  int RemoveFlexible(JobId job, ServerId server, int gpus);

  // Scales the job in to its base demand: removes all flexible GPUs from all
  // servers. Returns the total number of GPUs released.
  int RemoveAllFlexible(JobId job);

  // Null if the job currently occupies no server.
  const JobPlacement* FindPlacement(JobId job) const;

  // Number of distinct servers hosting the job (0 if not placed).
  int NumServersHosting(JobId job) const;

  const std::unordered_map<JobId, JobPlacement>& placements() const {
    return placements_;
  }

  // --- Capacity loaning -----------------------------------------------------

  // Moves an inference server into the training whitelist.
  Status LoanServer(ServerId id);

  // Returns an on-loan server to the inference cluster. The server must be
  // idle: the orchestrator confirms no running workers before returning (§6).
  Status ReturnServer(ServerId id);

  // --- Capacity queries -------------------------------------------------------
  //
  // All O(1) counter reads.

  int TotalGpus(ServerPool pool) const { return total_gpus_[PoolIndex(pool)]; }
  int UsedGpus(ServerPool pool) const { return used_gpus_[PoolIndex(pool)]; }
  int FreeGpus(ServerPool pool) const {
    return total_gpus_[PoolIndex(pool)] - used_gpus_[PoolIndex(pool)];
  }

  // Physical free GPUs on training-visible servers.
  int TrainingSideFreeGpus() const;
  int TrainingSideTotalGpus() const;
  int TrainingSideUsedGpus() const;

  // Free capacity on training-visible servers in training-GPU units: on-loan
  // inference GPUs count at their normalization factor (§5.2).
  double TrainingSideFreeNormalized() const;

  // --- Debug ----------------------------------------------------------------

  // Recomputes every maintained counter and index from the server vector and
  // cross-checks the job-side placement view against the server-side one.
  // LYRA_CHECK-aborts on any divergence. O(#servers + #placements); intended
  // for tests and debug builds, never for the hot path.
  void AuditInvariants() const;

 private:
  static constexpr int kNumPools = 3;
  static constexpr int kNumGpuTypes = 2;

  static constexpr int PoolIndex(ServerPool pool) {
    return static_cast<int>(pool);
  }
  static constexpr int TypeIndex(GpuType type) { return static_cast<int>(type); }

  Server& mutable_server(ServerId id);

  // Membership index maintenance: ids are kept ascending per pool.
  void PoolInsert(ServerPool pool, ServerId id);
  void PoolErase(ServerPool pool, ServerId id);

  // Moves the counter contribution of a server between pools (loan/return).
  void MoveServerCounters(const Server& srv, ServerPool from, ServerPool to);

  // Adjusts used/free counters for `gpus` placed (positive) or removed
  // (negative) on the server.
  void AccountUsage(const Server& srv, int gpus);

  std::vector<Server> servers_;
  std::unordered_map<JobId, JobPlacement> placements_;

  // Incremental accounting (see class comment).
  std::array<int, kNumPools> total_gpus_{};
  std::array<int, kNumPools> used_gpus_{};
  std::array<std::array<int, kNumGpuTypes>, kNumPools> free_gpus_by_type_{};
  std::array<std::vector<ServerId>, kNumPools> pool_servers_;
};

}  // namespace lyra

#endif  // SRC_CLUSTER_CLUSTER_STATE_H_
