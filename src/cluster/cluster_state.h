// Mutable state of the combined training + inference GPU fleet.
//
// ClusterState owns every server and keeps a two-way index between jobs and
// the servers hosting their workers. All placement mutations go through this
// class so the job-side and server-side views can never diverge. It also
// implements the whitelist semantics of capacity loaning (§6): loaning moves
// a server from the inference pool to the on-loan pool (visible to the
// training scheduler), returning moves it back once it is idle.
//
// Capacity accounting is incremental: per-pool GPU totals, usage, and
// per-GPU-type free counts, plus sorted per-pool server-id membership lists,
// are maintained in O(1) (amortized) at every mutation point. All capacity
// queries are counter reads and pool listings return the maintained index —
// nothing on the query path scans the server vector. AuditInvariants()
// recomputes everything from scratch and is wired into the tests.
//
// Speculative what-if evaluation goes through ClusterTransaction: an RAII
// undo log that records the inverse of every placement/loan mutation and can
// Rollback() in O(ops applied) — per-pool counters and membership indices
// included — where Clone() would pay O(cluster size). See DESIGN.md
// "Speculative evaluation".
#ifndef SRC_CLUSTER_CLUSTER_STATE_H_
#define SRC_CLUSTER_CLUSTER_STATE_H_

#include <array>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/cluster/server.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace lyra {

class ClusterTransaction;

// Job-side view: which servers host this job and how many GPUs on each.
struct JobPlacement {
  std::map<ServerId, GpuShare> shares;

  int total_gpus() const;
  int base_gpus() const;
  int flexible_gpus() const;
  int num_servers() const { return static_cast<int>(shares.size()); }
};

class ClusterState {
 public:
  ClusterState() = default;

  // Non-copyable: the state is large and holds identity; clone explicitly
  // via Clone() where what-if analysis needs a scratch copy.
  ClusterState(const ClusterState&) = delete;
  ClusterState& operator=(const ClusterState&) = delete;
  ClusterState(ClusterState&&) = default;
  ClusterState& operator=(ClusterState&&) = default;

  ClusterState Clone() const;

  // --- Topology -------------------------------------------------------------

  // Adds a server to the fleet. Topology growth is not transactional: calling
  // this with an open ClusterTransaction is a programming error (what-if
  // evaluation speculates over placements and loans, never over hardware).
  ServerId AddServer(GpuType gpu_type, int num_gpus, ServerPool pool);

  const Server& server(ServerId id) const;
  int num_servers() const { return static_cast<int>(servers_.size()); }
  const std::vector<Server>& servers() const { return servers_; }

  // Ids of the servers in the pool, ascending. Returns the maintained
  // membership index: O(1), no allocation. The reference is invalidated by
  // AddServer/LoanServer/ReturnServer — callers that move servers between
  // pools while iterating must copy first.
  const std::vector<ServerId>& ServersInPool(ServerPool pool) const {
    return pool_servers_[PoolIndex(pool)];
  }

  int NumServersInPool(ServerPool pool) const {
    return static_cast<int>(pool_servers_[PoolIndex(pool)].size());
  }

  // Servers visible to the training scheduler: the training pool plus the
  // on-loan pool (the training whitelist).
  std::vector<ServerId> TrainingVisibleServers() const;

  // --- Placement ------------------------------------------------------------

  // Places `gpus` GPUs of the job on the server. Requires free capacity.
  void Place(JobId job, ServerId server, int gpus, bool flexible);

  // Removes the job from every server it occupies (a preemption or a
  // completion). No-op if the job has no placement.
  void RemoveJob(JobId job);

  // Removes up to `gpus` flexible GPUs of the job from the given server;
  // returns the number removed.
  int RemoveFlexible(JobId job, ServerId server, int gpus);

  // Scales the job in to its base demand: removes all flexible GPUs from all
  // servers. Returns the total number of GPUs released.
  int RemoveAllFlexible(JobId job);

  // Null if the job currently occupies no server.
  const JobPlacement* FindPlacement(JobId job) const;

  // Number of distinct servers hosting the job (0 if not placed).
  int NumServersHosting(JobId job) const;

  const std::unordered_map<JobId, JobPlacement>& placements() const {
    return placements_;
  }

  // --- Capacity loaning -----------------------------------------------------

  // Moves an inference server into the training whitelist.
  Status LoanServer(ServerId id);

  // Returns an on-loan server to the inference cluster. The server must be
  // idle: the orchestrator confirms no running workers before returning (§6).
  // While a transaction is open the idleness must also hold in the committed
  // state: a server emptied only by uncommitted (speculative) removals is
  // rejected, because the pending rollback would silently revert the return
  // after the caller already acted on its success.
  Status ReturnServer(ServerId id);

  // --- Health (fault model, DESIGN.md §7) -----------------------------------

  // Marks an idle server down (a crash): its capacity leaves the pool
  // counters and the membership index, so schedulers, the orchestrator, and
  // every capacity query stop seeing it. Callers vacate hosted jobs first.
  // Crashes are real events, never speculative: calling this with an open
  // transaction is a programming error.
  Status MarkServerDown(ServerId id);

  // Brings a down server back up; its capacity re-enters its pool.
  Status MarkServerUp(ServerId id);

  bool IsServerUp(ServerId id) const { return server(id).up(); }
  int NumServersDown() const { return servers_down_; }

  // Idleness judged against the committed state: share removals recorded in
  // the open transaction's undo log do not count. Equals Server::idle() when
  // no transaction is open.
  bool CommittedIdle(ServerId id) const;

  // --- Capacity queries -------------------------------------------------------
  //
  // All O(1) counter reads.

  int TotalGpus(ServerPool pool) const { return total_gpus_[PoolIndex(pool)]; }
  int UsedGpus(ServerPool pool) const { return used_gpus_[PoolIndex(pool)]; }
  int FreeGpus(ServerPool pool) const {
    return total_gpus_[PoolIndex(pool)] - used_gpus_[PoolIndex(pool)];
  }

  // Physical free GPUs on training-visible servers.
  int TrainingSideFreeGpus() const;
  int TrainingSideTotalGpus() const;
  int TrainingSideUsedGpus() const;

  // Free capacity on training-visible servers in training-GPU units: on-loan
  // inference GPUs count at their normalization factor (§5.2).
  double TrainingSideFreeNormalized() const;

  // --- Transactions ---------------------------------------------------------

  // True while at least one ClusterTransaction is open on this state.
  bool InTransaction() const { return txn_depth_ > 0; }

  // Undo entries recorded since the outermost open transaction began.
  std::size_t UndoLogSize() const { return undo_log_.size(); }

  // --- Debug ----------------------------------------------------------------

  // Recomputes every maintained counter and index from the server vector and
  // cross-checks the job-side placement view against the server-side one.
  // LYRA_CHECK-aborts on any divergence. O(#servers + #placements); intended
  // for tests and debug builds, never for the hot path.
  void AuditInvariants() const;

 private:
  friend class ClusterTransaction;

  static constexpr int kNumPools = 3;
  static constexpr int kNumGpuTypes = 2;

  static constexpr int PoolIndex(ServerPool pool) {
    return static_cast<int>(pool);
  }
  static constexpr int TypeIndex(GpuType type) { return static_cast<int>(type); }

  Server& mutable_server(ServerId id);

  // Membership index maintenance: ids are kept ascending per pool.
  void PoolInsert(ServerPool pool, ServerId id);
  void PoolErase(ServerPool pool, ServerId id);

  // Moves the counter contribution of a server between pools (loan/return).
  void MoveServerCounters(const Server& srv, ServerPool from, ServerPool to);

  // Adjusts used/free counters for `gpus` placed (positive) or removed
  // (negative) on the server.
  void AccountUsage(const Server& srv, int gpus);

  // One recorded inverse operation. kShareDelta re-applies a (base, flexible)
  // GPU delta of a job on a server; kSetPool moves a server back to `pool`.
  // Applying the log in reverse order restores the pre-transaction state,
  // counters and pool indices included.
  struct UndoEntry {
    enum class Kind : unsigned char { kShareDelta, kSetPool };
    Kind kind = Kind::kShareDelta;
    ServerPool pool = ServerPool::kTraining;  // kSetPool: pool to restore
    JobId job;
    ServerId server;
    int base_delta = 0;
    int flexible_delta = 0;
  };

  // Logging hooks called by the mutators while a transaction is open.
  void RecordShareDelta(JobId job, ServerId server, int base_delta,
                        int flexible_delta);
  void RecordSetPool(ServerId server, ServerPool pool);

  // Applies a share delta to the server-side and job-side views plus the
  // usage counters, creating/erasing map entries as shares cross zero. The
  // non-logging primitive behind rollback.
  void ApplyShareDelta(JobId job, ServerId server, int base_delta,
                       int flexible_delta);

  // Replays (and pops) the undo log down to `mark`, newest entry first.
  void RollbackTo(std::size_t mark);

  std::vector<Server> servers_;
  std::unordered_map<JobId, JobPlacement> placements_;

  // Incremental accounting (see class comment).
  std::array<int, kNumPools> total_gpus_{};
  std::array<int, kNumPools> used_gpus_{};
  std::array<std::array<int, kNumGpuTypes>, kNumPools> free_gpus_by_type_{};
  std::array<std::vector<ServerId>, kNumPools> pool_servers_;

  // Number of servers currently down (health, DESIGN.md §7).
  int servers_down_ = 0;

  // Transaction support. The log holds inverse ops for every mutation since
  // the outermost transaction opened; nested transactions mark positions in
  // it. Never cloned: a Clone() starts with a clean (committed) state.
  std::vector<UndoEntry> undo_log_;
  int txn_depth_ = 0;
};

// RAII undo-log transaction over a ClusterState (the cheap alternative to
// Clone() for what-if evaluation, §4/§5 speculative searches).
//
//   ClusterTransaction txn(cluster);
//   ... Place / RemoveJob / RemoveFlexible / LoanServer / ReturnServer ...
//   txn.Rollback();   // or txn.Commit(); destructor rolls back if neither ran
//
// Rollback restores the exact pre-transaction state — placements, per-pool
// counters, membership indices — in O(operations applied). Transactions nest
// LIFO: an inner transaction may roll back its own suffix of the log while
// the outer one can still roll back everything (an inner Commit only
// surrenders the inner rollback point). The ClusterState must outlive the
// transaction and must not be moved while one is open.
class ClusterTransaction {
 public:
  explicit ClusterTransaction(ClusterState& cluster);
  ~ClusterTransaction();

  ClusterTransaction(const ClusterTransaction&) = delete;
  ClusterTransaction& operator=(const ClusterTransaction&) = delete;

  // Undoes every mutation applied since this transaction opened and closes
  // it. O(ops). Must be the innermost open transaction.
  void Rollback();

  // Keeps the mutations and closes this transaction. O(ops) for the
  // outermost transaction (the log is discarded), O(1) for nested ones.
  void Commit();

  bool open() const { return open_; }

  // Mutations recorded since this transaction opened (still rollback-able).
  std::size_t ops() const;

 private:
  ClusterState* cluster_;
  std::size_t mark_;  // undo-log size when this transaction opened
  int depth_;         // nesting depth, 1 = outermost; enforces LIFO close
  bool open_ = true;
};

}  // namespace lyra

#endif  // SRC_CLUSTER_CLUSTER_STATE_H_
