// Mutable state of the combined training + inference GPU fleet.
//
// ClusterState owns every server and keeps a two-way index between jobs and
// the servers hosting their workers. All placement mutations go through this
// class so the job-side and server-side views can never diverge. It also
// implements the whitelist semantics of capacity loaning (§6): loaning moves
// a server from the inference pool to the on-loan pool (visible to the
// training scheduler), returning moves it back once it is idle.
#ifndef SRC_CLUSTER_CLUSTER_STATE_H_
#define SRC_CLUSTER_CLUSTER_STATE_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "src/cluster/server.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace lyra {

// Job-side view: which servers host this job and how many GPUs on each.
struct JobPlacement {
  std::map<ServerId, GpuShare> shares;

  int total_gpus() const;
  int base_gpus() const;
  int flexible_gpus() const;
  int num_servers() const { return static_cast<int>(shares.size()); }
};

class ClusterState {
 public:
  ClusterState() = default;

  // Non-copyable: the state is large and holds identity; clone explicitly
  // via Clone() where what-if analysis needs a scratch copy.
  ClusterState(const ClusterState&) = delete;
  ClusterState& operator=(const ClusterState&) = delete;
  ClusterState(ClusterState&&) = default;
  ClusterState& operator=(ClusterState&&) = default;

  ClusterState Clone() const;

  // --- Topology -------------------------------------------------------------

  ServerId AddServer(GpuType gpu_type, int num_gpus, ServerPool pool);

  const Server& server(ServerId id) const;
  Server& mutable_server(ServerId id);
  int num_servers() const { return static_cast<int>(servers_.size()); }
  const std::vector<Server>& servers() const { return servers_; }

  std::vector<ServerId> ServersInPool(ServerPool pool) const;

  // Servers visible to the training scheduler: the training pool plus the
  // on-loan pool (the training whitelist).
  std::vector<ServerId> TrainingVisibleServers() const;

  // --- Placement ------------------------------------------------------------

  // Places `gpus` GPUs of the job on the server. Requires free capacity.
  void Place(JobId job, ServerId server, int gpus, bool flexible);

  // Removes the job from every server it occupies (a preemption or a
  // completion). No-op if the job has no placement.
  void RemoveJob(JobId job);

  // Removes up to `gpus` flexible GPUs of the job from the given server;
  // returns the number removed.
  int RemoveFlexible(JobId job, ServerId server, int gpus);

  // Scales the job in to its base demand: removes all flexible GPUs from all
  // servers. Returns the total number of GPUs released.
  int RemoveAllFlexible(JobId job);

  // Null if the job currently occupies no server.
  const JobPlacement* FindPlacement(JobId job) const;

  // Number of distinct servers hosting the job (0 if not placed).
  int NumServersHosting(JobId job) const;

  const std::unordered_map<JobId, JobPlacement>& placements() const {
    return placements_;
  }

  // --- Capacity loaning -----------------------------------------------------

  // Moves an inference server into the training whitelist.
  Status LoanServer(ServerId id);

  // Returns an on-loan server to the inference cluster. The server must be
  // idle: the orchestrator confirms no running workers before returning (§6).
  Status ReturnServer(ServerId id);

  // --- Capacity queries -------------------------------------------------------

  int TotalGpus(ServerPool pool) const;
  int UsedGpus(ServerPool pool) const;
  int FreeGpus(ServerPool pool) const;

  // Physical free GPUs on training-visible servers.
  int TrainingSideFreeGpus() const;
  int TrainingSideTotalGpus() const;
  int TrainingSideUsedGpus() const;

  // Free capacity on training-visible servers in training-GPU units: on-loan
  // inference GPUs count at their normalization factor (§5.2).
  double TrainingSideFreeNormalized() const;

 private:
  std::vector<Server> servers_;
  std::unordered_map<JobId, JobPlacement> placements_;
};

}  // namespace lyra

#endif  // SRC_CLUSTER_CLUSTER_STATE_H_
