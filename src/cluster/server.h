// A physical GPU server: the unit of capacity loaning (§3).
#ifndef SRC_CLUSTER_SERVER_H_
#define SRC_CLUSTER_SERVER_H_

#include <map>

#include "src/cluster/gpu.h"
#include "src/common/check.h"
#include "src/common/types.h"

namespace lyra {

// Which scheduler currently controls the server. An inference server that has
// been loaned to the training cluster is kOnLoan: it appears in the training
// scheduler's whitelist but physically lives in the inference cluster.
enum class ServerPool {
  kTraining,
  kInference,
  kOnLoan,
};

constexpr const char* ServerPoolName(ServerPool pool) {
  switch (pool) {
    case ServerPool::kTraining:
      return "training";
    case ServerPool::kInference:
      return "inference";
    case ServerPool::kOnLoan:
      return "on-loan";
  }
  return "?";
}

// Per-job GPU usage on one server, split into the job's base (gang-scheduled
// minimum) demand and its flexible (elastic, beyond-base) demand. The split
// matters for reclaiming: flexible GPUs can be released by scaling in without
// preempting the job (§5.3).
struct GpuShare {
  int base_gpus = 0;
  int flexible_gpus = 0;

  int total() const { return base_gpus + flexible_gpus; }

  friend bool operator==(const GpuShare& a, const GpuShare& b) {
    return a.base_gpus == b.base_gpus && a.flexible_gpus == b.flexible_gpus;
  }
};

class Server {
 public:
  Server(ServerId id, GpuType gpu_type, int num_gpus, ServerPool pool)
      : id_(id), gpu_type_(gpu_type), num_gpus_(num_gpus), pool_(pool) {
    LYRA_CHECK_GT(num_gpus, 0);
  }

  ServerId id() const { return id_; }
  GpuType gpu_type() const { return gpu_type_; }
  int num_gpus() const { return num_gpus_; }
  ServerPool pool() const { return pool_; }
  void set_pool(ServerPool pool) { pool_ = pool; }

  // Health (§ fault model): a down server keeps its pool tag but its capacity
  // is invisible — ClusterState removes it from the pool counters and
  // membership index while down. Only ClusterState::MarkServerDown/Up flip
  // this so the accounting always moves with it.
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  int used_gpus() const { return used_gpus_; }
  int free_gpus() const { return num_gpus_ - used_gpus_; }
  bool idle() const { return used_gpus_ == 0; }

  // Jobs hosted by this server and the GPUs each occupies here.
  const std::map<JobId, GpuShare>& jobs() const { return jobs_; }
  int num_jobs() const { return static_cast<int>(jobs_.size()); }

  // Number of GPUs the given job occupies on this server (0 if absent).
  int JobGpus(JobId job) const;

  // True if this server hosts any flexible (elastic beyond-base) GPUs.
  bool HasFlexibleGpus() const;

  // Adds `gpus` GPUs of the job to this server. Requires capacity.
  void Place(JobId job, int gpus, bool flexible);

  // Removes all of the job's GPUs from this server. Requires presence.
  void RemoveJob(JobId job);

  // Removes up to `gpus` flexible GPUs of the job; returns how many were
  // actually removed. Erases the job entry when its share reaches zero.
  int RemoveFlexible(JobId job, int gpus);

  // Applies an exact (base, flexible) GPU delta of the job, creating or
  // erasing its entry as the share crosses zero. Requires the result to stay
  // within [0, capacity]. Transaction-rollback primitive: ClusterState uses
  // it to replay inverse operations.
  void ApplyShareDelta(JobId job, int base_delta, int flexible_delta);

 private:
  ServerId id_;
  GpuType gpu_type_;
  int num_gpus_;
  ServerPool pool_;
  bool up_ = true;
  int used_gpus_ = 0;
  std::map<JobId, GpuShare> jobs_;
};

}  // namespace lyra

#endif  // SRC_CLUSTER_SERVER_H_
