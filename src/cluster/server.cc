#include "src/cluster/server.h"

namespace lyra {

int Server::JobGpus(JobId job) const {
  auto it = jobs_.find(job);
  return it == jobs_.end() ? 0 : it->second.total();
}

bool Server::HasFlexibleGpus() const {
  for (const auto& [job, share] : jobs_) {
    if (share.flexible_gpus > 0) {
      return true;
    }
  }
  return false;
}

void Server::Place(JobId job, int gpus, bool flexible) {
  LYRA_CHECK_GT(gpus, 0);
  LYRA_CHECK_LE(gpus, free_gpus());
  GpuShare& share = jobs_[job];
  if (flexible) {
    share.flexible_gpus += gpus;
  } else {
    share.base_gpus += gpus;
  }
  used_gpus_ += gpus;
}

void Server::RemoveJob(JobId job) {
  auto it = jobs_.find(job);
  LYRA_CHECK(it != jobs_.end());
  used_gpus_ -= it->second.total();
  LYRA_CHECK_GE(used_gpus_, 0);
  jobs_.erase(it);
}

int Server::RemoveFlexible(JobId job, int gpus) {
  LYRA_CHECK_GE(gpus, 0);
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return 0;
  }
  const int removed = std::min(gpus, it->second.flexible_gpus);
  it->second.flexible_gpus -= removed;
  used_gpus_ -= removed;
  if (it->second.total() == 0) {
    jobs_.erase(it);
  }
  return removed;
}

void Server::ApplyShareDelta(JobId job, int base_delta, int flexible_delta) {
  GpuShare& share = jobs_[job];
  share.base_gpus += base_delta;
  share.flexible_gpus += flexible_delta;
  LYRA_CHECK_GE(share.base_gpus, 0);
  LYRA_CHECK_GE(share.flexible_gpus, 0);
  used_gpus_ += base_delta + flexible_delta;
  LYRA_CHECK_GE(used_gpus_, 0);
  LYRA_CHECK_LE(used_gpus_, num_gpus_);
  if (share.total() == 0) {
    jobs_.erase(job);
  }
}

}  // namespace lyra
