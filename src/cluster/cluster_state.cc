#include "src/cluster/cluster_state.h"

#include <algorithm>

namespace lyra {

int JobPlacement::total_gpus() const {
  int total = 0;
  for (const auto& [server, share] : shares) {
    total += share.total();
  }
  return total;
}

int JobPlacement::base_gpus() const {
  int total = 0;
  for (const auto& [server, share] : shares) {
    total += share.base_gpus;
  }
  return total;
}

int JobPlacement::flexible_gpus() const {
  int total = 0;
  for (const auto& [server, share] : shares) {
    total += share.flexible_gpus;
  }
  return total;
}

ClusterState ClusterState::Clone() const {
  ClusterState copy;
  copy.servers_ = servers_;
  copy.placements_ = placements_;
  return copy;
}

ServerId ClusterState::AddServer(GpuType gpu_type, int num_gpus, ServerPool pool) {
  const ServerId id(static_cast<std::int64_t>(servers_.size()));
  servers_.emplace_back(id, gpu_type, num_gpus, pool);
  return id;
}

const Server& ClusterState::server(ServerId id) const {
  LYRA_CHECK(id.valid());
  LYRA_CHECK_LT(static_cast<std::size_t>(id.value), servers_.size());
  return servers_[static_cast<std::size_t>(id.value)];
}

Server& ClusterState::mutable_server(ServerId id) {
  return const_cast<Server&>(static_cast<const ClusterState*>(this)->server(id));
}

std::vector<ServerId> ClusterState::ServersInPool(ServerPool pool) const {
  std::vector<ServerId> out;
  for (const Server& s : servers_) {
    if (s.pool() == pool) {
      out.push_back(s.id());
    }
  }
  return out;
}

std::vector<ServerId> ClusterState::TrainingVisibleServers() const {
  std::vector<ServerId> out;
  for (const Server& s : servers_) {
    if (s.pool() == ServerPool::kTraining || s.pool() == ServerPool::kOnLoan) {
      out.push_back(s.id());
    }
  }
  return out;
}

void ClusterState::Place(JobId job, ServerId server_id, int gpus, bool flexible) {
  Server& srv = mutable_server(server_id);
  srv.Place(job, gpus, flexible);
  GpuShare& share = placements_[job].shares[server_id];
  if (flexible) {
    share.flexible_gpus += gpus;
  } else {
    share.base_gpus += gpus;
  }
}

void ClusterState::RemoveJob(JobId job) {
  auto it = placements_.find(job);
  if (it == placements_.end()) {
    return;
  }
  for (const auto& [server_id, share] : it->second.shares) {
    mutable_server(server_id).RemoveJob(job);
  }
  placements_.erase(it);
}

int ClusterState::RemoveFlexible(JobId job, ServerId server_id, int gpus) {
  auto it = placements_.find(job);
  if (it == placements_.end()) {
    return 0;
  }
  auto share_it = it->second.shares.find(server_id);
  if (share_it == it->second.shares.end()) {
    return 0;
  }
  const int removed = mutable_server(server_id).RemoveFlexible(job, gpus);
  share_it->second.flexible_gpus -= removed;
  LYRA_CHECK_GE(share_it->second.flexible_gpus, 0);
  if (share_it->second.total() == 0) {
    it->second.shares.erase(share_it);
  }
  if (it->second.shares.empty()) {
    placements_.erase(it);
  }
  return removed;
}

int ClusterState::RemoveAllFlexible(JobId job) {
  auto it = placements_.find(job);
  if (it == placements_.end()) {
    return 0;
  }
  // Collect first: RemoveFlexible mutates the share map we are iterating.
  std::vector<std::pair<ServerId, int>> flex;
  for (const auto& [server_id, share] : it->second.shares) {
    if (share.flexible_gpus > 0) {
      flex.emplace_back(server_id, share.flexible_gpus);
    }
  }
  int released = 0;
  for (const auto& [server_id, gpus] : flex) {
    released += RemoveFlexible(job, server_id, gpus);
  }
  return released;
}

const JobPlacement* ClusterState::FindPlacement(JobId job) const {
  auto it = placements_.find(job);
  return it == placements_.end() ? nullptr : &it->second;
}

int ClusterState::NumServersHosting(JobId job) const {
  const JobPlacement* placement = FindPlacement(job);
  return placement == nullptr ? 0 : placement->num_servers();
}

Status ClusterState::LoanServer(ServerId id) {
  Server& srv = mutable_server(id);
  if (srv.pool() != ServerPool::kInference) {
    return Status::FailedPrecondition("server is not in the inference pool");
  }
  srv.set_pool(ServerPool::kOnLoan);
  return Status::Ok();
}

Status ClusterState::ReturnServer(ServerId id) {
  Server& srv = mutable_server(id);
  if (srv.pool() != ServerPool::kOnLoan) {
    return Status::FailedPrecondition("server is not on loan");
  }
  if (!srv.idle()) {
    return Status::FailedPrecondition("server still has running workers");
  }
  srv.set_pool(ServerPool::kInference);
  return Status::Ok();
}

int ClusterState::TotalGpus(ServerPool pool) const {
  int total = 0;
  for (const Server& s : servers_) {
    if (s.pool() == pool) {
      total += s.num_gpus();
    }
  }
  return total;
}

int ClusterState::UsedGpus(ServerPool pool) const {
  int total = 0;
  for (const Server& s : servers_) {
    if (s.pool() == pool) {
      total += s.used_gpus();
    }
  }
  return total;
}

int ClusterState::FreeGpus(ServerPool pool) const {
  return TotalGpus(pool) - UsedGpus(pool);
}

int ClusterState::TrainingSideFreeGpus() const {
  return FreeGpus(ServerPool::kTraining) + FreeGpus(ServerPool::kOnLoan);
}

int ClusterState::TrainingSideTotalGpus() const {
  return TotalGpus(ServerPool::kTraining) + TotalGpus(ServerPool::kOnLoan);
}

int ClusterState::TrainingSideUsedGpus() const {
  return UsedGpus(ServerPool::kTraining) + UsedGpus(ServerPool::kOnLoan);
}

double ClusterState::TrainingSideFreeNormalized() const {
  double total = 0.0;
  for (const Server& s : servers_) {
    if (s.pool() == ServerPool::kTraining || s.pool() == ServerPool::kOnLoan) {
      total += s.free_gpus() * GpuComputeFactor(s.gpu_type());
    }
  }
  return total;
}

}  // namespace lyra
