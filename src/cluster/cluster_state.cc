#include "src/cluster/cluster_state.h"

#include <algorithm>

namespace lyra {

int JobPlacement::total_gpus() const {
  int total = 0;
  for (const auto& [server, share] : shares) {
    total += share.total();
  }
  return total;
}

int JobPlacement::base_gpus() const {
  int total = 0;
  for (const auto& [server, share] : shares) {
    total += share.base_gpus;
  }
  return total;
}

int JobPlacement::flexible_gpus() const {
  int total = 0;
  for (const auto& [server, share] : shares) {
    total += share.flexible_gpus;
  }
  return total;
}

ClusterState ClusterState::Clone() const {
  ClusterState copy;
  copy.servers_ = servers_;
  copy.placements_ = placements_;
  copy.total_gpus_ = total_gpus_;
  copy.used_gpus_ = used_gpus_;
  copy.free_gpus_by_type_ = free_gpus_by_type_;
  copy.pool_servers_ = pool_servers_;
  copy.servers_down_ = servers_down_;
  return copy;
}

ServerId ClusterState::AddServer(GpuType gpu_type, int num_gpus, ServerPool pool) {
  LYRA_CHECK(txn_depth_ == 0);  // topology growth is not transactional
  const ServerId id(static_cast<std::int64_t>(servers_.size()));
  servers_.emplace_back(id, gpu_type, num_gpus, pool);
  total_gpus_[PoolIndex(pool)] += num_gpus;
  free_gpus_by_type_[PoolIndex(pool)][TypeIndex(gpu_type)] += num_gpus;
  PoolInsert(pool, id);
  return id;
}

const Server& ClusterState::server(ServerId id) const {
  LYRA_CHECK(id.valid());
  LYRA_CHECK_LT(static_cast<std::size_t>(id.value), servers_.size());
  return servers_[static_cast<std::size_t>(id.value)];
}

Server& ClusterState::mutable_server(ServerId id) {
  return const_cast<Server&>(static_cast<const ClusterState*>(this)->server(id));
}

void ClusterState::PoolInsert(ServerPool pool, ServerId id) {
  std::vector<ServerId>& members = pool_servers_[PoolIndex(pool)];
  // Ids are almost always appended in order; fall back to a sorted insert for
  // servers re-entering a pool (loan/return).
  if (members.empty() || members.back() < id) {
    members.push_back(id);
    return;
  }
  members.insert(std::lower_bound(members.begin(), members.end(), id), id);
}

void ClusterState::PoolErase(ServerPool pool, ServerId id) {
  std::vector<ServerId>& members = pool_servers_[PoolIndex(pool)];
  auto it = std::lower_bound(members.begin(), members.end(), id);
  LYRA_CHECK(it != members.end() && *it == id);
  members.erase(it);
}

void ClusterState::MoveServerCounters(const Server& srv, ServerPool from,
                                      ServerPool to) {
  const int type = TypeIndex(srv.gpu_type());
  total_gpus_[PoolIndex(from)] -= srv.num_gpus();
  total_gpus_[PoolIndex(to)] += srv.num_gpus();
  used_gpus_[PoolIndex(from)] -= srv.used_gpus();
  used_gpus_[PoolIndex(to)] += srv.used_gpus();
  free_gpus_by_type_[PoolIndex(from)][type] -= srv.free_gpus();
  free_gpus_by_type_[PoolIndex(to)][type] += srv.free_gpus();
  PoolErase(from, srv.id());
  PoolInsert(to, srv.id());
}

void ClusterState::AccountUsage(const Server& srv, int gpus) {
  used_gpus_[PoolIndex(srv.pool())] += gpus;
  free_gpus_by_type_[PoolIndex(srv.pool())][TypeIndex(srv.gpu_type())] -= gpus;
}

std::vector<ServerId> ClusterState::TrainingVisibleServers() const {
  // Training servers are created before any server is loaned, so the
  // concatenation preserves ascending-id order in practice.
  std::vector<ServerId> out = pool_servers_[PoolIndex(ServerPool::kTraining)];
  const std::vector<ServerId>& loaned = pool_servers_[PoolIndex(ServerPool::kOnLoan)];
  out.insert(out.end(), loaned.begin(), loaned.end());
  return out;
}

void ClusterState::Place(JobId job, ServerId server_id, int gpus, bool flexible) {
  Server& srv = mutable_server(server_id);
  LYRA_CHECK(srv.up());  // down servers are invisible to placement
  srv.Place(job, gpus, flexible);
  AccountUsage(srv, gpus);
  GpuShare& share = placements_[job].shares[server_id];
  if (flexible) {
    share.flexible_gpus += gpus;
  } else {
    share.base_gpus += gpus;
  }
  if (txn_depth_ > 0) {
    RecordShareDelta(job, server_id, flexible ? 0 : -gpus, flexible ? -gpus : 0);
  }
}

void ClusterState::RemoveJob(JobId job) {
  auto it = placements_.find(job);
  if (it == placements_.end()) {
    return;
  }
  for (const auto& [server_id, share] : it->second.shares) {
    Server& srv = mutable_server(server_id);
    srv.RemoveJob(job);
    AccountUsage(srv, -share.total());
    if (txn_depth_ > 0) {
      RecordShareDelta(job, server_id, share.base_gpus, share.flexible_gpus);
    }
  }
  placements_.erase(it);
}

int ClusterState::RemoveFlexible(JobId job, ServerId server_id, int gpus) {
  auto it = placements_.find(job);
  if (it == placements_.end()) {
    return 0;
  }
  auto share_it = it->second.shares.find(server_id);
  if (share_it == it->second.shares.end()) {
    return 0;
  }
  Server& srv = mutable_server(server_id);
  const int removed = srv.RemoveFlexible(job, gpus);
  AccountUsage(srv, -removed);
  share_it->second.flexible_gpus -= removed;
  LYRA_CHECK_GE(share_it->second.flexible_gpus, 0);
  if (share_it->second.total() == 0) {
    it->second.shares.erase(share_it);
  }
  if (it->second.shares.empty()) {
    placements_.erase(it);
  }
  if (txn_depth_ > 0 && removed > 0) {
    RecordShareDelta(job, server_id, 0, removed);
  }
  return removed;
}

int ClusterState::RemoveAllFlexible(JobId job) {
  auto it = placements_.find(job);
  if (it == placements_.end()) {
    return 0;
  }
  // Collect first: RemoveFlexible mutates the share map we are iterating.
  std::vector<std::pair<ServerId, int>> flex;
  for (const auto& [server_id, share] : it->second.shares) {
    if (share.flexible_gpus > 0) {
      flex.emplace_back(server_id, share.flexible_gpus);
    }
  }
  int released = 0;
  for (const auto& [server_id, gpus] : flex) {
    released += RemoveFlexible(job, server_id, gpus);
  }
  return released;
}

const JobPlacement* ClusterState::FindPlacement(JobId job) const {
  auto it = placements_.find(job);
  return it == placements_.end() ? nullptr : &it->second;
}

int ClusterState::NumServersHosting(JobId job) const {
  const JobPlacement* placement = FindPlacement(job);
  return placement == nullptr ? 0 : placement->num_servers();
}

Status ClusterState::LoanServer(ServerId id) {
  Server& srv = mutable_server(id);
  if (!srv.up()) {
    return Status::FailedPrecondition("server is down");
  }
  if (srv.pool() != ServerPool::kInference) {
    return Status::FailedPrecondition("server is not in the inference pool");
  }
  srv.set_pool(ServerPool::kOnLoan);
  MoveServerCounters(srv, ServerPool::kInference, ServerPool::kOnLoan);
  if (txn_depth_ > 0) {
    RecordSetPool(id, ServerPool::kInference);
  }
  return Status::Ok();
}

Status ClusterState::ReturnServer(ServerId id) {
  Server& srv = mutable_server(id);
  if (!srv.up()) {
    return Status::FailedPrecondition("server is down");
  }
  if (srv.pool() != ServerPool::kOnLoan) {
    return Status::FailedPrecondition("server is not on loan");
  }
  if (!srv.idle()) {
    return Status::FailedPrecondition("server still has running workers");
  }
  if (txn_depth_ > 0 && !CommittedIdle(id)) {
    // The server looks idle only because an open transaction speculatively
    // removed its workers. A return based on that would be silently reverted
    // by the rollback while the caller keeps believing it succeeded.
    return Status::FailedPrecondition(
        "server idleness is speculative under an open transaction");
  }
  srv.set_pool(ServerPool::kInference);
  MoveServerCounters(srv, ServerPool::kOnLoan, ServerPool::kInference);
  if (txn_depth_ > 0) {
    RecordSetPool(id, ServerPool::kOnLoan);
  }
  return Status::Ok();
}

Status ClusterState::MarkServerDown(ServerId id) {
  LYRA_CHECK(txn_depth_ == 0);  // crashes are real, never speculative
  Server& srv = mutable_server(id);
  if (!srv.up()) {
    return Status::FailedPrecondition("server is already down");
  }
  if (!srv.idle()) {
    return Status::FailedPrecondition("server still has running workers");
  }
  const int pool = PoolIndex(srv.pool());
  total_gpus_[pool] -= srv.num_gpus();
  free_gpus_by_type_[pool][TypeIndex(srv.gpu_type())] -= srv.num_gpus();
  PoolErase(srv.pool(), id);
  srv.set_up(false);
  ++servers_down_;
  return Status::Ok();
}

Status ClusterState::MarkServerUp(ServerId id) {
  LYRA_CHECK(txn_depth_ == 0);
  Server& srv = mutable_server(id);
  if (srv.up()) {
    return Status::FailedPrecondition("server is already up");
  }
  LYRA_CHECK(srv.idle());  // nothing can be placed on a down server
  const int pool = PoolIndex(srv.pool());
  total_gpus_[pool] += srv.num_gpus();
  free_gpus_by_type_[pool][TypeIndex(srv.gpu_type())] += srv.num_gpus();
  PoolInsert(srv.pool(), id);
  srv.set_up(true);
  --servers_down_;
  return Status::Ok();
}

bool ClusterState::CommittedIdle(ServerId id) const {
  // Undo entries hold the inverse delta of each applied mutation; summing
  // them onto the current usage reconstructs the committed usage without
  // replaying the log.
  int used = server(id).used_gpus();
  for (const UndoEntry& entry : undo_log_) {
    if (entry.kind == UndoEntry::Kind::kShareDelta && entry.server == id) {
      used += entry.base_delta + entry.flexible_delta;
    }
  }
  return used == 0;
}

int ClusterState::TrainingSideFreeGpus() const {
  return FreeGpus(ServerPool::kTraining) + FreeGpus(ServerPool::kOnLoan);
}

int ClusterState::TrainingSideTotalGpus() const {
  return TotalGpus(ServerPool::kTraining) + TotalGpus(ServerPool::kOnLoan);
}

int ClusterState::TrainingSideUsedGpus() const {
  return UsedGpus(ServerPool::kTraining) + UsedGpus(ServerPool::kOnLoan);
}

double ClusterState::TrainingSideFreeNormalized() const {
  double total = 0.0;
  for (ServerPool pool : {ServerPool::kTraining, ServerPool::kOnLoan}) {
    for (int type = 0; type < kNumGpuTypes; ++type) {
      total += free_gpus_by_type_[PoolIndex(pool)][type] *
               GpuComputeFactor(static_cast<GpuType>(type));
    }
  }
  return total;
}

void ClusterState::AuditInvariants() const {
  std::array<int, kNumPools> total{};
  std::array<int, kNumPools> used{};
  std::array<std::array<int, kNumGpuTypes>, kNumPools> free_by_type{};
  std::array<std::vector<ServerId>, kNumPools> members;

  int down = 0;
  for (const Server& srv : servers_) {
    if (!srv.up()) {
      // A down server is excluded from every counter and membership list and
      // must have been vacated before it crashed.
      LYRA_CHECK(srv.idle());
      LYRA_CHECK(srv.jobs().empty());
      ++down;
      continue;
    }
    const int pool = PoolIndex(srv.pool());
    total[pool] += srv.num_gpus();
    used[pool] += srv.used_gpus();
    free_by_type[pool][TypeIndex(srv.gpu_type())] += srv.free_gpus();
    members[pool].push_back(srv.id());

    // Server-side per-job shares must sum to the server's used count and be
    // mirrored exactly in the job-side placement map.
    int server_used = 0;
    for (const auto& [job, share] : srv.jobs()) {
      LYRA_CHECK_GE(share.base_gpus, 0);
      LYRA_CHECK_GE(share.flexible_gpus, 0);
      LYRA_CHECK_GT(share.total(), 0);
      server_used += share.total();
      auto it = placements_.find(job);
      LYRA_CHECK(it != placements_.end());
      auto share_it = it->second.shares.find(srv.id());
      LYRA_CHECK(share_it != it->second.shares.end());
      LYRA_CHECK_EQ(share_it->second.base_gpus, share.base_gpus);
      LYRA_CHECK_EQ(share_it->second.flexible_gpus, share.flexible_gpus);
    }
    LYRA_CHECK_EQ(server_used, srv.used_gpus());
    LYRA_CHECK_LE(srv.used_gpus(), srv.num_gpus());
  }

  // Job-side shares must all exist on the server side (with the mirror check
  // above, the two views are then identical).
  for (const auto& [job, placement] : placements_) {
    LYRA_CHECK(!placement.shares.empty());
    for (const auto& [server_id, share] : placement.shares) {
      const Server& srv = server(server_id);
      auto it = srv.jobs().find(job);
      LYRA_CHECK(it != srv.jobs().end());
      LYRA_CHECK_EQ(it->second.base_gpus, share.base_gpus);
      LYRA_CHECK_EQ(it->second.flexible_gpus, share.flexible_gpus);
    }
  }

  for (int pool = 0; pool < kNumPools; ++pool) {
    LYRA_CHECK_EQ(total[pool], total_gpus_[pool]);
    LYRA_CHECK_EQ(used[pool], used_gpus_[pool]);
    for (int type = 0; type < kNumGpuTypes; ++type) {
      LYRA_CHECK_EQ(free_by_type[pool][type], free_gpus_by_type_[pool][type]);
    }
    LYRA_CHECK(members[pool] == pool_servers_[pool]);
    LYRA_CHECK(std::is_sorted(pool_servers_[pool].begin(), pool_servers_[pool].end()));
  }
  LYRA_CHECK_EQ(down, servers_down_);
}

// --- Transactions -----------------------------------------------------------

void ClusterState::RecordShareDelta(JobId job, ServerId server, int base_delta,
                                    int flexible_delta) {
  UndoEntry entry;
  entry.kind = UndoEntry::Kind::kShareDelta;
  entry.job = job;
  entry.server = server;
  entry.base_delta = base_delta;
  entry.flexible_delta = flexible_delta;
  undo_log_.push_back(entry);
}

void ClusterState::RecordSetPool(ServerId server, ServerPool pool) {
  UndoEntry entry;
  entry.kind = UndoEntry::Kind::kSetPool;
  entry.server = server;
  entry.pool = pool;
  undo_log_.push_back(entry);
}

void ClusterState::ApplyShareDelta(JobId job, ServerId server_id, int base_delta,
                                   int flexible_delta) {
  Server& srv = mutable_server(server_id);
  srv.ApplyShareDelta(job, base_delta, flexible_delta);
  AccountUsage(srv, base_delta + flexible_delta);
  GpuShare& share = placements_[job].shares[server_id];
  share.base_gpus += base_delta;
  share.flexible_gpus += flexible_delta;
  LYRA_CHECK_GE(share.base_gpus, 0);
  LYRA_CHECK_GE(share.flexible_gpus, 0);
  if (share.total() == 0) {
    auto it = placements_.find(job);
    it->second.shares.erase(server_id);
    if (it->second.shares.empty()) {
      placements_.erase(it);
    }
  }
}

void ClusterState::RollbackTo(std::size_t mark) {
  while (undo_log_.size() > mark) {
    const UndoEntry entry = undo_log_.back();
    undo_log_.pop_back();
    switch (entry.kind) {
      case UndoEntry::Kind::kShareDelta:
        ApplyShareDelta(entry.job, entry.server, entry.base_delta,
                        entry.flexible_delta);
        break;
      case UndoEntry::Kind::kSetPool: {
        Server& srv = mutable_server(entry.server);
        const ServerPool current = srv.pool();
        LYRA_CHECK(current != entry.pool);
        srv.set_pool(entry.pool);
        MoveServerCounters(srv, current, entry.pool);
        break;
      }
    }
  }
}

ClusterTransaction::ClusterTransaction(ClusterState& cluster)
    : cluster_(&cluster),
      mark_(cluster.undo_log_.size()),
      depth_(++cluster.txn_depth_) {}

ClusterTransaction::~ClusterTransaction() {
  if (open_) {
    Rollback();
  }
}

void ClusterTransaction::Rollback() {
  LYRA_CHECK(open_);
  LYRA_CHECK_EQ(cluster_->txn_depth_, depth_);  // LIFO close order
  cluster_->RollbackTo(mark_);
  --cluster_->txn_depth_;
  open_ = false;
}

void ClusterTransaction::Commit() {
  LYRA_CHECK(open_);
  LYRA_CHECK_EQ(cluster_->txn_depth_, depth_);  // LIFO close order
  if (depth_ == 1) {
    cluster_->undo_log_.clear();
  }
  // Nested commit: entries stay in the log so the outer transaction can
  // still roll the whole suffix back.
  --cluster_->txn_depth_;
  open_ = false;
}

std::size_t ClusterTransaction::ops() const {
  return open_ ? cluster_->undo_log_.size() - mark_ : 0;
}

}  // namespace lyra
