// Server reclaiming (§4).
//
// When the inference cluster asks for N_R servers back, the training side
// must empty N_R on-loan servers. Vacating a server scales in jobs that only
// have flexible workers there (no job-level preemption) and fully preempts
// jobs whose base workers live there — removing those jobs from *all* their
// servers, which can collaterally empty other on-loan servers.
//
// The selection problem is a knapsack with dependent item values (NP-hard);
// Lyra's heuristic folds the dependency into a server preemption cost — the
// sum over hosted jobs of that job's server fraction, 1/|servers(job)| — and
// greedily vacates the cheapest server, cascading cost updates (Table 1's
// example). Random and smallest-job-count-first comparators and an
// exhaustive optimal solver are provided for Fig 10 and the §7.3 deep dive.
#ifndef SRC_LYRA_RECLAIM_H_
#define SRC_LYRA_RECLAIM_H_

#include <vector>

#include "src/cluster/cluster_state.h"
#include "src/common/rng.h"
#include "src/common/types.h"

namespace lyra {

struct ReclaimResult {
  // On-loan servers that are now empty (selected plus collaterally emptied).
  std::vector<ServerId> vacated;
  // Jobs fully preempted (must be re-queued by the caller).
  std::vector<JobId> preempted;
  // Jobs that lost flexible workers but kept running.
  std::vector<JobId> scaled_in;
  // GPUs freed in excess of the reclaiming demand: the collateral damage
  // metric of §7.3 (GPUs a preempted job held on servers that were not part
  // of the demand).
  int collateral_gpus = 0;
};

class ReclaimPolicy {
 public:
  virtual ~ReclaimPolicy() = default;

  virtual const char* name() const = 0;

  // Empties `num_servers` on-loan servers by scaling in / preempting jobs on
  // them (mutating cluster placements). Does not move servers between pools;
  // the orchestrator returns the vacated servers afterwards. If fewer
  // occupied on-loan servers exist than requested, vacates all of them.
  virtual ReclaimResult Reclaim(ClusterState& cluster, int num_servers) = 0;
};

// The preemption cost of vacating `server`: sum over jobs with *base* GPUs on
// it of 1 / (number of servers hosting that job's base GPUs). Jobs with only
// flexible GPUs on the server cost nothing — they scale in, not preempt.
double ServerPreemptionCost(const ClusterState& cluster, ServerId server);

// Alternative cost definitions from Table 1, for the worked example and the
// ablation bench: number of running jobs, and summed GPU fractions.
double ServerJobCountCost(const ClusterState& cluster, ServerId server);
double ServerGpuFractionCost(const ClusterState& cluster, ServerId server);

// Lyra's greedy heuristic with elastic-first release: flexible-only servers
// have zero cost and are taken first; ties break on collateral damage.
class LyraReclaimPolicy : public ReclaimPolicy {
 public:
  const char* name() const override { return "Lyra"; }
  ReclaimResult Reclaim(ClusterState& cluster, int num_servers) override;
};

// Uniform-random selection among occupied on-loan servers.
class RandomReclaimPolicy : public ReclaimPolicy {
 public:
  explicit RandomReclaimPolicy(std::uint64_t seed = 99) : rng_(seed) {}
  const char* name() const override { return "Random"; }
  ReclaimResult Reclaim(ClusterState& cluster, int num_servers) override;

 private:
  Rng rng_;
};

// Smallest (job) count first: top-k servers hosting the fewest jobs.
class ScfReclaimPolicy : public ReclaimPolicy {
 public:
  const char* name() const override { return "SCF"; }
  ReclaimResult Reclaim(ClusterState& cluster, int num_servers) override;
};

// Exhaustive search minimizing the number of preempted jobs, used to measure
// how close the heuristic gets (§7.3: same result under 60 servers, 420,000x
// slower). Exponential: only run on small instances.
class OptimalReclaimPolicy : public ReclaimPolicy {
 public:
  const char* name() const override { return "Optimal"; }
  ReclaimResult Reclaim(ClusterState& cluster, int num_servers) override;
};

// Shared mechanics, exposed for tests: empties one server in place. Jobs with
// base GPUs on it are preempted everywhere; flexible-only jobs are scaled in.
void VacateServer(ClusterState& cluster, ServerId server, ReclaimResult& result);

}  // namespace lyra

#endif  // SRC_LYRA_RECLAIM_H_
