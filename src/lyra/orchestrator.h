// Resource orchestrator (§3, §6).
//
// The orchestrator executes the inference scheduler's instructions: it is
// told how many servers may be on loan right now, loans idle inference
// servers when that number rises, and — when it falls — selects which on-loan
// servers to return using a pluggable reclaiming policy (§4). Whitelist
// movement is the ClusterState pool transition; a server is only returned
// once the scheduler confirms it has no running workers.
#ifndef SRC_LYRA_ORCHESTRATOR_H_
#define SRC_LYRA_ORCHESTRATOR_H_

#include "src/cluster/cluster_state.h"
#include "src/lyra/reclaim.h"

namespace lyra {

struct OrchestratorStats {
  int loan_operations = 0;
  int reclaim_operations = 0;
  int servers_loaned = 0;
  int servers_returned = 0;
  int jobs_preempted = 0;
  int collateral_gpus = 0;
};

class ResourceOrchestrator {
 public:
  // `policy` must outlive the orchestrator.
  explicit ResourceOrchestrator(ReclaimPolicy* policy) : policy_(policy) {}

  // Drives the loaned-server count toward `target_loaned`. Returns the
  // reclaim result (possibly empty) whose preempted jobs the caller must
  // re-queue and whose scaled-in jobs need a throughput refresh.
  ReclaimResult Reconcile(ClusterState& cluster, int target_loaned);

  const OrchestratorStats& stats() const { return stats_; }

 private:
  ReclaimPolicy* policy_;
  OrchestratorStats stats_;
};

}  // namespace lyra

#endif  // SRC_LYRA_ORCHESTRATOR_H_
