#include "src/lyra/placement.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

#include "src/common/check.h"
#include "src/sched/elastic_util.h"
#include "src/sched/placement_util.h"

namespace lyra {
namespace {

// A tiered candidate set: servers are considered tier by tier; within a tier
// best-fit prefers a non-empty server with the least (but sufficient) free
// GPUs, opening an empty server only when no partially-used one fits.
struct Candidate {
  ServerId id;
  int tier = 0;
};

constexpr double kCreditEpsilon = 1e-9;

// Nominal-worker capacity of the candidate set: a worker slot on inference
// GPUs counts its compute factor (capacity normalization, §5.2).
double TierCapacityWorkers(const ClusterState& cluster, const std::vector<Candidate>& set,
                           int gpus_per_worker) {
  double total = 0.0;
  for (const Candidate& c : set) {
    const Server& server = cluster.server(c.id);
    total += (server.free_gpus() / gpus_per_worker) *
             GpuComputeFactor(server.gpu_type());
  }
  return total;
}

// Places physical workers into the candidate set until `workers` nominal
// worker credit is reached; returns the credit placed. Placement key per
// worker: (tier, empty-last, best-fit free GPUs), ties broken by candidate
// order. Candidates live in a min-heap on that key instead of being rescanned
// per worker: only the chosen server's key changes between picks (its free
// count shrinks and it stops being empty), so one pop + one push per placed
// worker keeps the heap exact — O((workers + |set|) log |set|) instead of
// O(workers x |set|). Candidates too small for one worker are dropped for
// good, which the rescan loop could not do.
double PlaceBestFit(ClusterState& cluster, JobId job, int gpus_per_worker, int workers,
                    bool flexible, const std::vector<Candidate>& set) {
  struct Entry {
    int tier;
    bool empty;
    int free;
    std::size_t index;  // position in `set`: preserves first-seen tie-breaks
    ServerId id;

    std::tuple<int, bool, int, std::size_t> key() const {
      return {tier, empty, free, index};
    }
    bool operator>(const Entry& other) const { return key() > other.key(); }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (std::size_t i = 0; i < set.size(); ++i) {
    const Server& server = cluster.server(set[i].id);
    const int free = server.free_gpus();
    if (free >= gpus_per_worker) {
      heap.push({set[i].tier, server.idle(), free, i, set[i].id});
    }
  }

  double placed = 0.0;
  while (placed + kCreditEpsilon < static_cast<double>(workers) && !heap.empty()) {
    Entry best = heap.top();
    heap.pop();
    cluster.Place(job, best.id, gpus_per_worker, flexible);
    placed += GpuComputeFactor(cluster.server(best.id).gpu_type());
    best.free -= gpus_per_worker;
    best.empty = false;
    if (best.free >= gpus_per_worker) {
      heap.push(best);
    }
  }
  return placed;
}

bool ServerHasBaseGpus(const Server& server) {
  for (const auto& [job, share] : server.jobs()) {
    if (share.base_gpus > 0) {
      return true;
    }
  }
  return false;
}

// Candidate sets for one GPU type. `grouped` separates the base group (no
// flexible workers) from the flexible group (no base workers) per §5.3.
std::vector<Candidate> PoolCandidates(const ClusterState& cluster, ServerPool pool,
                                      bool for_flexible, bool grouped) {
  std::vector<Candidate> out;
  for (ServerId id : cluster.ServersInPool(pool)) {
    const Server& server = cluster.server(id);
    int tier = 0;
    if (grouped) {
      if (for_flexible) {
        // Flexible demand prefers servers without base workers.
        tier = ServerHasBaseGpus(server) ? 1 : 0;
      } else {
        // Base demand prefers servers without flexible workers.
        tier = server.HasFlexibleGpus() ? 1 : 0;
      }
    }
    out.push_back({id, tier});
  }
  return out;
}

void OffsetTiers(std::vector<Candidate>& set, int offset) {
  for (Candidate& c : set) {
    c.tier += offset;
  }
}

// All-or-nothing placement of a job's base demand within a single GPU type
// (or mixed for heterogeneous jobs).
bool PlaceBase(ClusterState& cluster, const Job& job, int workers,
               const PlacementOptions& options) {
  const JobSpec& spec = job.spec();
  const bool loan_eligible =
      options.allow_loaned && (spec.fungible || spec.heterogeneous);
  const bool grouped = !options.naive;

  auto training = PoolCandidates(cluster, ServerPool::kTraining, /*for_flexible=*/false,
                                 grouped && spec.elastic());
  std::vector<Candidate> loaned;
  if (loan_eligible) {
    loaned = PoolCandidates(cluster, ServerPool::kOnLoan, /*for_flexible=*/false,
                            grouped && spec.elastic());
  }

  auto try_set = [&](std::vector<Candidate> set) {
    if (TierCapacityWorkers(cluster, set, spec.gpus_per_worker) + kCreditEpsilon <
        static_cast<double>(workers)) {
      return false;
    }
    const double placed =
        PlaceBestFit(cluster, job.id(), spec.gpus_per_worker, workers, false, set);
    LYRA_CHECK_GE(placed + kCreditEpsilon, static_cast<double>(workers));
    return true;
  };

  if (spec.heterogeneous && !options.naive) {
    // Heterogeneous base demand goes to training servers; if that fails the
    // job may span both pools (§6).
    if (try_set(training)) {
      return true;
    }
    std::vector<Candidate> merged = training;
    OffsetTiers(loaned, 2);
    merged.insert(merged.end(), loaned.begin(), loaned.end());
    return try_set(merged);
  }

  // Non-heterogeneous jobs keep one GPU type per run: pick a pool order and
  // place entirely within one pool.
  const bool prefer_loaned = spec.elastic() && !options.naive && loan_eligible;
  if (prefer_loaned) {
    if (try_set(loaned)) {
      return true;
    }
    return try_set(training);
  }
  if (try_set(training)) {
    return true;
  }
  return loan_eligible && try_set(loaned);
}

// Places up to `workers` flexible workers; partial success allowed.
int PlaceFlexible(ClusterState& cluster, const Job& job, int workers,
                  const PlacementOptions& options) {
  const JobSpec& spec = job.spec();
  const bool loan_eligible =
      options.allow_loaned && (spec.fungible || spec.heterogeneous);
  const bool grouped = !options.naive;

  std::vector<Candidate> set;
  GpuType pinned;
  const bool is_pinned =
      !spec.heterogeneous && CurrentGpuType(cluster, job.id(), &pinned);

  if (spec.heterogeneous && !options.naive) {
    // Flexible demand of heterogeneous jobs prefers inference servers (§6).
    set = PoolCandidates(cluster, ServerPool::kOnLoan, true, grouped);
    auto training = PoolCandidates(cluster, ServerPool::kTraining, true, grouped);
    OffsetTiers(training, 2);
    set.insert(set.end(), training.begin(), training.end());
  } else if (is_pinned && pinned == GpuType::kInferenceT4) {
    set = PoolCandidates(cluster, ServerPool::kOnLoan, true, grouped);
  } else if (is_pinned && pinned == GpuType::kTrainingV100) {
    set = PoolCandidates(cluster, ServerPool::kTraining, true, grouped);
  } else {
    // Unplaced job (should not happen for scale-out) or naive mode: training
    // first, then loaned.
    set = PoolCandidates(cluster, ServerPool::kTraining, true, grouped);
    if (loan_eligible) {
      auto loaned = PoolCandidates(cluster, ServerPool::kOnLoan, true, grouped);
      OffsetTiers(loaned, 2);
      set.insert(set.end(), loaned.begin(), loaned.end());
    }
  }
  const double placed =
      PlaceBestFit(cluster, job.id(), spec.gpus_per_worker, workers, true, set);
  return static_cast<int>(placed + 0.5);
}

}  // namespace

PlacementStats ApplyAllocation(ClusterState& cluster, const AllocationDecision& decision,
                               const PlacementOptions& options) {
  PlacementStats stats;

  // Scale-ins first so launches and scale-outs see the freed capacity.
  for (const auto& [job, target_flex] : decision.flexible_targets) {
    const int current = PlacedFlexibleWorkers(cluster, *job);
    if (current > target_flex) {
      ShrinkFlexibleTo(cluster, *job, target_flex);
      stats.scale_ins += current - target_flex;
    }
  }

  // Launches in decreasing per-worker GPU demand (BFD across jobs).
  std::vector<Job*> launches = decision.launches;
  std::stable_sort(launches.begin(), launches.end(), [](const Job* a, const Job* b) {
    return a->spec().gpus_per_worker > b->spec().gpus_per_worker;
  });
  for (Job* job : launches) {
    if (PlaceBase(cluster, *job, job->spec().min_workers, options)) {
      ++stats.launched;
    } else {
      ++stats.launch_failures;
    }
  }

  // Flexible scale-outs to the knapsack targets.
  for (const auto& [job, target_flex] : decision.flexible_targets) {
    if (cluster.FindPlacement(job->id()) == nullptr) {
      continue;  // launch failed; no flexible workers for this job
    }
    const int current = PlacedFlexibleWorkers(cluster, *job);
    if (current < target_flex) {
      stats.scale_outs += PlaceFlexible(cluster, *job, target_flex - current, options);
    }
  }
  return stats;
}

}  // namespace lyra
