#include "src/lyra/reclaim.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "src/common/check.h"
#include "src/obs/obs.h"

namespace lyra {
namespace {

// Number of servers hosting base GPUs of the job.
int BaseServerCount(const ClusterState& cluster, JobId job) {
  const JobPlacement* placement = cluster.FindPlacement(job);
  if (placement == nullptr) {
    return 0;
  }
  int count = 0;
  for (const auto& [server_id, share] : placement->shares) {
    if (share.base_gpus > 0) {
      ++count;
    }
  }
  return count;
}

struct VacateContext {
  ReclaimResult result;
  // Placement snapshots of preempted jobs, for collateral accounting.
  std::unordered_map<JobId, JobPlacement> preempted_snapshots;
};

void VacateServerImpl(ClusterState& cluster, ServerId server_id, VacateContext& ctx) {
  const Server& server = cluster.server(server_id);
  std::vector<std::pair<JobId, GpuShare>> hosted(server.jobs().begin(),
                                                 server.jobs().end());
  obs::AddCounter("reclaim.servers_vacated");
  for (const auto& [job, share] : hosted) {
    if (share.base_gpus > 0) {
      // Base workers here: the whole job must be preempted, everywhere.
      ctx.preempted_snapshots.emplace(job, *cluster.FindPlacement(job));
      cluster.RemoveJob(job);
      ctx.result.preempted.push_back(job);
      obs::AddCounter("reclaim.jobs_preempted");
    } else {
      // Flexible workers only: scale the job in, no preemption.
      cluster.RemoveFlexible(job, server_id, share.flexible_gpus);
      ctx.result.scaled_in.push_back(job);
      obs::AddCounter("reclaim.jobs_scaled_in");
    }
  }
}

std::vector<ServerId> OccupiedOnLoanServers(const ClusterState& cluster) {
  std::vector<ServerId> out;
  for (ServerId id : cluster.ServersInPool(ServerPool::kOnLoan)) {
    if (!cluster.server(id).idle()) {
      out.push_back(id);
    }
  }
  return out;
}

int IdleOnLoanCount(const ClusterState& cluster) {
  int count = 0;
  for (ServerId id : cluster.ServersInPool(ServerPool::kOnLoan)) {
    if (cluster.server(id).idle()) {
      ++count;
    }
  }
  return count;
}

// Finalizes the result: records the newly idle on-loan servers and computes
// collateral damage (GPUs preempted jobs held outside the vacated set).
ReclaimResult Finalize(const ClusterState& cluster, VacateContext ctx,
                       const std::unordered_set<std::int64_t>& idle_before) {
  std::unordered_set<std::int64_t> vacated_set;
  for (ServerId id : cluster.ServersInPool(ServerPool::kOnLoan)) {
    if (cluster.server(id).idle() && !idle_before.contains(id.value)) {
      ctx.result.vacated.push_back(id);
      vacated_set.insert(id.value);
    }
  }
  // Deduplicate scale-in records (a job may shrink on several servers).
  std::sort(ctx.result.scaled_in.begin(), ctx.result.scaled_in.end());
  ctx.result.scaled_in.erase(
      std::unique(ctx.result.scaled_in.begin(), ctx.result.scaled_in.end()),
      ctx.result.scaled_in.end());

  for (const auto& [job, placement] : ctx.preempted_snapshots) {
    for (const auto& [server_id, share] : placement.shares) {
      if (!vacated_set.contains(server_id.value)) {
        ctx.result.collateral_gpus += share.total();
      }
    }
  }
  return std::move(ctx.result);
}

std::unordered_set<std::int64_t> IdleOnLoanSet(const ClusterState& cluster) {
  std::unordered_set<std::int64_t> idle;
  for (ServerId id : cluster.ServersInPool(ServerPool::kOnLoan)) {
    if (cluster.server(id).idle()) {
      idle.insert(id.value);
    }
  }
  return idle;
}

// Vacates servers from `order` until `num_servers` on-loan servers are newly
// idle (collateral emptying counts) or the order is exhausted.
ReclaimResult VacateInOrder(ClusterState& cluster, const std::vector<ServerId>& order,
                            int num_servers) {
  const auto idle_before = IdleOnLoanSet(cluster);
  const int idle_start = IdleOnLoanCount(cluster);
  VacateContext ctx;
  for (ServerId id : order) {
    if (IdleOnLoanCount(cluster) - idle_start >= num_servers) {
      break;
    }
    if (!cluster.server(id).idle()) {
      VacateServerImpl(cluster, id, ctx);
    }
  }
  return Finalize(cluster, std::move(ctx), idle_before);
}

// Estimated collateral damage of vacating the server now: GPUs its
// base-hosting jobs hold on other servers, except on on-loan servers that
// would become entirely empty — those count toward the reclaiming demand
// rather than being wasted (the server-1/server-2 situation of Fig 5). Used
// as the greedy tie-breaker (§4).
int CollateralEstimate(const ClusterState& cluster, ServerId server_id) {
  const Server& server = cluster.server(server_id);
  // GPUs the to-be-preempted jobs hold per other server.
  std::unordered_map<std::int64_t, int> freed_elsewhere;
  for (const auto& [job, share] : server.jobs()) {
    if (share.base_gpus == 0) {
      continue;
    }
    const JobPlacement* placement = cluster.FindPlacement(job);
    for (const auto& [other_id, other_share] : placement->shares) {
      if (other_id != server_id) {
        freed_elsewhere[other_id.value] += other_share.total();
      }
    }
  }
  int collateral = 0;
  for (const auto& [other_value, gpus] : freed_elsewhere) {
    const Server& other = cluster.server(ServerId(other_value));
    const bool empties = gpus == other.used_gpus();
    if (empties && other.pool() == ServerPool::kOnLoan) {
      continue;  // contributes to the demand, not damage
    }
    collateral += gpus;
  }
  return collateral;
}

}  // namespace

double ServerPreemptionCost(const ClusterState& cluster, ServerId server_id) {
  const Server& server = cluster.server(server_id);
  double cost = 0.0;
  for (const auto& [job, share] : server.jobs()) {
    if (share.base_gpus == 0) {
      continue;  // flexible-only: scales in for free
    }
    const int servers = BaseServerCount(cluster, job);
    LYRA_CHECK_GT(servers, 0);
    cost += 1.0 / static_cast<double>(servers);
  }
  return cost;
}

double ServerJobCountCost(const ClusterState& cluster, ServerId server_id) {
  return static_cast<double>(cluster.server(server_id).num_jobs());
}

double ServerGpuFractionCost(const ClusterState& cluster, ServerId server_id) {
  const Server& server = cluster.server(server_id);
  double cost = 0.0;
  for (const auto& [job, share] : server.jobs()) {
    const JobPlacement* placement = cluster.FindPlacement(job);
    cost += static_cast<double>(share.total()) /
            static_cast<double>(placement->total_gpus());
  }
  return cost;
}

void VacateServer(ClusterState& cluster, ServerId server, ReclaimResult& result) {
  const auto idle_before = IdleOnLoanSet(cluster);
  VacateContext ctx;
  VacateServerImpl(cluster, server, ctx);
  ReclaimResult partial = Finalize(cluster, std::move(ctx), idle_before);
  result.vacated.insert(result.vacated.end(), partial.vacated.begin(),
                        partial.vacated.end());
  result.preempted.insert(result.preempted.end(), partial.preempted.begin(),
                          partial.preempted.end());
  result.scaled_in.insert(result.scaled_in.end(), partial.scaled_in.begin(),
                          partial.scaled_in.end());
  result.collateral_gpus += partial.collateral_gpus;
}

ReclaimResult LyraReclaimPolicy::Reclaim(ClusterState& cluster, int num_servers) {
  const auto idle_before = IdleOnLoanSet(cluster);
  const int idle_start = IdleOnLoanCount(cluster);
  VacateContext ctx;
  while (IdleOnLoanCount(cluster) - idle_start < num_servers) {
    // Pick the occupied on-loan server with the lowest preemption cost,
    // breaking ties on estimated collateral damage.
    ServerId best;
    double best_cost = std::numeric_limits<double>::infinity();
    int best_collateral = std::numeric_limits<int>::max();
    for (ServerId id : OccupiedOnLoanServers(cluster)) {
      const double cost = ServerPreemptionCost(cluster, id);
      const int collateral = CollateralEstimate(cluster, id);
      if (cost < best_cost ||
          (cost == best_cost && collateral < best_collateral)) {
        best = id;
        best_cost = cost;
        best_collateral = collateral;
      }
    }
    if (!best.valid()) {
      break;  // nothing left to vacate
    }
    VacateServerImpl(cluster, best, ctx);
  }
  return Finalize(cluster, std::move(ctx), idle_before);
}

ReclaimResult RandomReclaimPolicy::Reclaim(ClusterState& cluster, int num_servers) {
  std::vector<ServerId> order = OccupiedOnLoanServers(cluster);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[static_cast<std::size_t>(
                                rng_.UniformInt(0, static_cast<std::int64_t>(i) - 1))]);
  }
  return VacateInOrder(cluster, order, num_servers);
}

ReclaimResult ScfReclaimPolicy::Reclaim(ClusterState& cluster, int num_servers) {
  std::vector<ServerId> order = OccupiedOnLoanServers(cluster);
  std::stable_sort(order.begin(), order.end(), [&](ServerId a, ServerId b) {
    return cluster.server(a).num_jobs() < cluster.server(b).num_jobs();
  });
  return VacateInOrder(cluster, order, num_servers);
}

ReclaimResult OptimalReclaimPolicy::Reclaim(ClusterState& cluster, int num_servers) {
  std::vector<ServerId> occupied = OccupiedOnLoanServers(cluster);
  const int k = std::min<int>(num_servers, static_cast<int>(occupied.size()));
  if (k <= 0) {
    return VacateInOrder(cluster, {}, num_servers);
  }

  // Map jobs with base GPUs on occupied servers to dense indices.
  std::unordered_map<std::int64_t, int> job_index;
  std::vector<std::vector<int>> server_jobs(occupied.size());
  for (std::size_t s = 0; s < occupied.size(); ++s) {
    for (const auto& [job, share] : cluster.server(occupied[s]).jobs()) {
      if (share.base_gpus == 0) {
        continue;
      }
      auto [it, inserted] = job_index.emplace(job.value, static_cast<int>(job_index.size()));
      server_jobs[s].push_back(it->second);
    }
  }

  // Branch and bound over exactly-k subsets, minimizing distinct preempted
  // jobs. Exponential in |occupied| by design — this is the comparison point
  // for the heuristic's 420,000x speedup claim.
  std::vector<int> job_refs(job_index.size(), 0);
  int best_count = std::numeric_limits<int>::max();
  std::vector<std::size_t> best_subset;
  std::vector<std::size_t> current;

  auto recurse = [&](auto&& self, std::size_t start, int chosen, int preempted) -> void {
    if (preempted >= best_count) {
      return;  // prune
    }
    if (chosen == k) {
      best_count = preempted;
      best_subset = current;
      return;
    }
    if (occupied.size() - start < static_cast<std::size_t>(k - chosen)) {
      return;  // not enough servers left
    }
    for (std::size_t s = start; s < occupied.size(); ++s) {
      int added = 0;
      for (int j : server_jobs[s]) {
        if (job_refs[static_cast<std::size_t>(j)]++ == 0) {
          ++added;
        }
      }
      current.push_back(s);
      self(self, s + 1, chosen + 1, preempted + added);
      current.pop_back();
      for (int j : server_jobs[s]) {
        --job_refs[static_cast<std::size_t>(j)];
      }
    }
  };
  recurse(recurse, 0, 0, 0);

  std::vector<ServerId> order;
  for (std::size_t s : best_subset) {
    order.push_back(occupied[s]);
  }
  // Vacate the chosen subset in full: pass its size so collateral emptying
  // does not truncate the optimal selection.
  return VacateInOrder(cluster, order, static_cast<int>(order.size()));
}

}  // namespace lyra
