#include "src/lyra/reclaim.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "src/common/check.h"
#include "src/obs/obs.h"

namespace lyra {
namespace {

// Number of servers hosting base GPUs of the job.
int BaseServerCount(const ClusterState& cluster, JobId job) {
  const JobPlacement* placement = cluster.FindPlacement(job);
  if (placement == nullptr) {
    return 0;
  }
  int count = 0;
  for (const auto& [server_id, share] : placement->shares) {
    if (share.base_gpus > 0) {
      ++count;
    }
  }
  return count;
}

struct VacateContext {
  ReclaimResult result;
  // Placement snapshots of preempted jobs, for collateral accounting.
  std::unordered_map<JobId, JobPlacement> preempted_snapshots;
};

// Servers whose occupancy a vacate call changed: the vacated server plus
// every other server a hosted job occupied (preempted jobs lose their shares
// everywhere; scaled-in jobs keep theirs, but their placements decide whose
// cached costs went stale). Deduplicated. The callers use it to update idle
// counts and cost-heap keys incrementally instead of rescanning the pool.
struct VacateEffect {
  std::vector<ServerId> affected;
};

VacateEffect VacateServerImpl(ClusterState& cluster, ServerId server_id,
                              VacateContext& ctx) {
  const Server& server = cluster.server(server_id);
  std::vector<std::pair<JobId, GpuShare>> hosted(server.jobs().begin(),
                                                 server.jobs().end());
  obs::AddCounter("reclaim.servers_vacated");
  VacateEffect effect;
  effect.affected.push_back(server_id);
  for (const auto& [job, share] : hosted) {
    const JobPlacement* placement = cluster.FindPlacement(job);
    for (const auto& [other_id, other_share] : placement->shares) {
      if (other_id != server_id) {
        effect.affected.push_back(other_id);
      }
    }
    if (share.base_gpus > 0) {
      // Base workers here: the whole job must be preempted, everywhere.
      ctx.preempted_snapshots.emplace(job, *placement);
      cluster.RemoveJob(job);
      ctx.result.preempted.push_back(job);
      obs::AddCounter("reclaim.jobs_preempted");
    } else {
      // Flexible workers only: scale the job in, no preemption.
      cluster.RemoveFlexible(job, server_id, share.flexible_gpus);
      ctx.result.scaled_in.push_back(job);
      obs::AddCounter("reclaim.jobs_scaled_in");
    }
  }
  std::sort(effect.affected.begin(), effect.affected.end());
  effect.affected.erase(
      std::unique(effect.affected.begin(), effect.affected.end()),
      effect.affected.end());
  return effect;
}

// On-loan servers in `affected` that are idle now. Every affected server
// hosted at least one share when the vacate started, so any idle one
// transitioned during that call — summing these per vacate reproduces the
// old per-iteration IdleOnLoanCount() delta without rescanning the pool.
int NewlyIdleOnLoan(const ClusterState& cluster, const std::vector<ServerId>& affected) {
  int count = 0;
  for (ServerId id : affected) {
    const Server& srv = cluster.server(id);
    if (srv.pool() == ServerPool::kOnLoan && srv.idle()) {
      ++count;
    }
  }
  return count;
}

// Finalizes the result: records the newly idle on-loan servers and computes
// collateral damage (GPUs preempted jobs held outside the vacated set).
ReclaimResult Finalize(const ClusterState& cluster, VacateContext ctx,
                       const std::unordered_set<std::int64_t>& idle_before) {
  std::unordered_set<std::int64_t> vacated_set;
  for (ServerId id : cluster.ServersInPool(ServerPool::kOnLoan)) {
    if (cluster.server(id).idle() && !idle_before.contains(id.value)) {
      ctx.result.vacated.push_back(id);
      vacated_set.insert(id.value);
    }
  }
  // Deduplicate scale-in records (a job may shrink on several servers).
  std::sort(ctx.result.scaled_in.begin(), ctx.result.scaled_in.end());
  ctx.result.scaled_in.erase(
      std::unique(ctx.result.scaled_in.begin(), ctx.result.scaled_in.end()),
      ctx.result.scaled_in.end());

  for (const auto& [job, placement] : ctx.preempted_snapshots) {
    for (const auto& [server_id, share] : placement.shares) {
      if (!vacated_set.contains(server_id.value)) {
        ctx.result.collateral_gpus += share.total();
      }
    }
  }
  return std::move(ctx.result);
}

std::unordered_set<std::int64_t> IdleOnLoanSet(const ClusterState& cluster) {
  std::unordered_set<std::int64_t> idle;
  for (ServerId id : cluster.ServersInPool(ServerPool::kOnLoan)) {
    if (cluster.server(id).idle()) {
      idle.insert(id.value);
    }
  }
  return idle;
}

std::vector<ServerId> OccupiedOnLoanServers(const ClusterState& cluster) {
  std::vector<ServerId> out;
  for (ServerId id : cluster.ServersInPool(ServerPool::kOnLoan)) {
    if (!cluster.server(id).idle()) {
      out.push_back(id);
    }
  }
  return out;
}

// Vacates servers from `order` until `num_servers` on-loan servers are newly
// idle (collateral emptying counts) or the order is exhausted. The idle
// count is carried incrementally across iterations (each vacate reports the
// servers it emptied) instead of recounting the pool per server.
ReclaimResult VacateInOrder(ClusterState& cluster, const std::vector<ServerId>& order,
                            int num_servers) {
  const auto idle_before = IdleOnLoanSet(cluster);
  VacateContext ctx;
  int newly_idle = 0;
  for (ServerId id : order) {
    if (newly_idle >= num_servers) {
      break;
    }
    if (!cluster.server(id).idle()) {
      const VacateEffect effect = VacateServerImpl(cluster, id, ctx);
      newly_idle += NewlyIdleOnLoan(cluster, effect.affected);
    }
  }
  return Finalize(cluster, std::move(ctx), idle_before);
}

// Collateral damage of vacating the server now, measured speculatively: the
// preemptions are applied inside a ClusterTransaction, the damage is read
// off the resulting state, and the transaction is rolled back — O(size of
// the vacated neighborhood), no cluster-wide copy. GPUs the preempted jobs
// hold on other servers count as damage except where the preemption empties
// an on-loan server entirely — those GPUs serve the reclaiming demand
// rather than being wasted (the server-1/server-2 situation of Fig 5). Used
// as the greedy tie-breaker (§4).
int CollateralEstimate(ClusterState& cluster, ServerId server_id) {
  const Server& server = cluster.server(server_id);
  // Snapshot the placements of the jobs the vacate would preempt. Jobs with
  // only flexible GPUs here scale in on this server alone, which cannot
  // change any other server's occupancy — no need to speculate about them.
  std::vector<std::pair<JobId, JobPlacement>> preempted;
  for (const auto& [job, share] : server.jobs()) {
    if (share.base_gpus > 0) {
      preempted.emplace_back(job, *cluster.FindPlacement(job));
    }
  }
  if (preempted.empty()) {
    return 0;
  }
  obs::AddCounter("reclaim.speculative_vacates");
  ClusterTransaction txn(cluster);
  for (const auto& [job, snapshot] : preempted) {
    cluster.RemoveJob(job);
  }
  int collateral = 0;
  for (const auto& [job, snapshot] : preempted) {
    for (const auto& [other_id, other_share] : snapshot.shares) {
      if (other_id == server_id) {
        continue;  // GPUs on the vacated server are the demand itself
      }
      const Server& other = cluster.server(other_id);
      if (other.idle() && other.pool() == ServerPool::kOnLoan) {
        continue;  // collaterally emptied: contributes to the demand, not damage
      }
      collateral += other_share.total();
    }
  }
  txn.Rollback();
  return collateral;
}

}  // namespace

double ServerPreemptionCost(const ClusterState& cluster, ServerId server_id) {
  const Server& server = cluster.server(server_id);
  double cost = 0.0;
  for (const auto& [job, share] : server.jobs()) {
    if (share.base_gpus == 0) {
      continue;  // flexible-only: scales in for free
    }
    const int servers = BaseServerCount(cluster, job);
    LYRA_CHECK_GT(servers, 0);
    cost += 1.0 / static_cast<double>(servers);
  }
  return cost;
}

double ServerJobCountCost(const ClusterState& cluster, ServerId server_id) {
  return static_cast<double>(cluster.server(server_id).num_jobs());
}

double ServerGpuFractionCost(const ClusterState& cluster, ServerId server_id) {
  const Server& server = cluster.server(server_id);
  double cost = 0.0;
  for (const auto& [job, share] : server.jobs()) {
    const JobPlacement* placement = cluster.FindPlacement(job);
    cost += static_cast<double>(share.total()) /
            static_cast<double>(placement->total_gpus());
  }
  return cost;
}

void VacateServer(ClusterState& cluster, ServerId server, ReclaimResult& result) {
  const auto idle_before = IdleOnLoanSet(cluster);
  VacateContext ctx;
  VacateServerImpl(cluster, server, ctx);
  ReclaimResult partial = Finalize(cluster, std::move(ctx), idle_before);
  result.vacated.insert(result.vacated.end(), partial.vacated.begin(),
                        partial.vacated.end());
  result.preempted.insert(result.preempted.end(), partial.preempted.begin(),
                          partial.preempted.end());
  result.scaled_in.insert(result.scaled_in.end(), partial.scaled_in.begin(),
                          partial.scaled_in.end());
  result.collateral_gpus += partial.collateral_gpus;
}

ReclaimResult LyraReclaimPolicy::Reclaim(ClusterState& cluster, int num_servers) {
  const auto idle_before = IdleOnLoanSet(cluster);
  VacateContext ctx;
  int newly_idle = 0;

  // Lazy-invalidation cost heap over the occupied on-loan servers, keyed by
  // (preemption cost, collateral estimate, id) — exactly the order the old
  // full rescan selected in, so the greedy decisions are bit-identical. A
  // vacate re-keys only the servers whose cached costs it could have
  // changed: the servers that lost shares, plus every server sharing a job
  // with one of those (its collateral estimate reads their occupancy).
  // Stale heap entries are skipped by version; emptied servers leave the
  // heap for good. Replaces the O(occupied² · jobs) rescan-per-vacate.
  struct HeapEntry {
    double cost = 0.0;
    int collateral = 0;
    ServerId id;
    std::uint64_t version = 0;
  };
  auto worse = [](const HeapEntry& a, const HeapEntry& b) {
    return std::tie(a.cost, a.collateral, a.id.value) >
           std::tie(b.cost, b.collateral, b.id.value);
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(worse)> heap(worse);
  std::unordered_map<std::int64_t, std::uint64_t> versions;

  auto push_server = [&](ServerId id) {
    heap.push({ServerPreemptionCost(cluster, id), CollateralEstimate(cluster, id),
               id, ++versions[id.value]});
  };
  for (ServerId id : OccupiedOnLoanServers(cluster)) {
    push_server(id);
  }

  while (newly_idle < num_servers && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.version != versions[top.id.value] || cluster.server(top.id).idle()) {
      continue;  // re-keyed since, or collaterally emptied
    }
    const VacateEffect effect = VacateServerImpl(cluster, top.id, ctx);

    // Fold the emptied servers into the running idle count and re-key the
    // dirty neighborhood.
    std::vector<ServerId> dirty;
    for (ServerId id : effect.affected) {
      const Server& srv = cluster.server(id);
      if (srv.idle()) {
        if (srv.pool() == ServerPool::kOnLoan) {
          ++newly_idle;
          ++versions[id.value];  // drop its remaining heap entries
        }
        continue;  // idle: hosts nothing, nobody's estimate depends on it
      }
      dirty.push_back(id);
      for (const auto& [job, share] : srv.jobs()) {
        const JobPlacement* placement = cluster.FindPlacement(job);
        for (const auto& [other_id, other_share] : placement->shares) {
          dirty.push_back(other_id);
        }
      }
    }
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    for (ServerId id : dirty) {
      const Server& srv = cluster.server(id);
      if (srv.pool() == ServerPool::kOnLoan && !srv.idle()) {
        push_server(id);
      }
    }
  }
  return Finalize(cluster, std::move(ctx), idle_before);
}

ReclaimResult RandomReclaimPolicy::Reclaim(ClusterState& cluster, int num_servers) {
  std::vector<ServerId> order = OccupiedOnLoanServers(cluster);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[static_cast<std::size_t>(
                                rng_.UniformInt(0, static_cast<std::int64_t>(i) - 1))]);
  }
  return VacateInOrder(cluster, order, num_servers);
}

ReclaimResult ScfReclaimPolicy::Reclaim(ClusterState& cluster, int num_servers) {
  std::vector<ServerId> order = OccupiedOnLoanServers(cluster);
  std::stable_sort(order.begin(), order.end(), [&](ServerId a, ServerId b) {
    return cluster.server(a).num_jobs() < cluster.server(b).num_jobs();
  });
  return VacateInOrder(cluster, order, num_servers);
}

ReclaimResult OptimalReclaimPolicy::Reclaim(ClusterState& cluster, int num_servers) {
  std::vector<ServerId> occupied = OccupiedOnLoanServers(cluster);
  const int k = std::min<int>(num_servers, static_cast<int>(occupied.size()));
  if (k <= 0) {
    return VacateInOrder(cluster, {}, num_servers);
  }

  // Map jobs with base GPUs on occupied servers to dense indices.
  std::unordered_map<std::int64_t, int> job_index;
  std::vector<std::vector<int>> server_jobs(occupied.size());
  for (std::size_t s = 0; s < occupied.size(); ++s) {
    for (const auto& [job, share] : cluster.server(occupied[s]).jobs()) {
      if (share.base_gpus == 0) {
        continue;
      }
      auto [it, inserted] = job_index.emplace(job.value, static_cast<int>(job_index.size()));
      server_jobs[s].push_back(it->second);
    }
  }

  // Branch and bound over exactly-k subsets, minimizing distinct preempted
  // jobs. Exponential in |occupied| by design — this is the comparison point
  // for the heuristic's 420,000x speedup claim.
  std::vector<int> job_refs(job_index.size(), 0);
  int best_count = std::numeric_limits<int>::max();
  std::vector<std::size_t> best_subset;
  std::vector<std::size_t> current;

  auto recurse = [&](auto&& self, std::size_t start, int chosen, int preempted) -> void {
    if (preempted >= best_count) {
      return;  // prune
    }
    if (chosen == k) {
      best_count = preempted;
      best_subset = current;
      return;
    }
    if (occupied.size() - start < static_cast<std::size_t>(k - chosen)) {
      return;  // not enough servers left
    }
    for (std::size_t s = start; s < occupied.size(); ++s) {
      int added = 0;
      for (int j : server_jobs[s]) {
        if (job_refs[static_cast<std::size_t>(j)]++ == 0) {
          ++added;
        }
      }
      current.push_back(s);
      self(self, s + 1, chosen + 1, preempted + added);
      current.pop_back();
      for (int j : server_jobs[s]) {
        --job_refs[static_cast<std::size_t>(j)];
      }
    }
  };
  recurse(recurse, 0, 0, 0);

  std::vector<ServerId> order;
  for (std::size_t s : best_subset) {
    order.push_back(occupied[s]);
  }
  // Vacate the chosen subset in full: pass its size so collateral emptying
  // does not truncate the optimal selection.
  return VacateInOrder(cluster, order, static_cast<int>(order.size()));
}

}  // namespace lyra
