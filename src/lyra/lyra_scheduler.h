// The Lyra job scheduler: two-phase allocation + BFD placement (§5).
#ifndef SRC_LYRA_LYRA_SCHEDULER_H_
#define SRC_LYRA_LYRA_SCHEDULER_H_

#include "src/lyra/placement.h"
#include "src/sched/scheduler.h"

namespace lyra {

struct LyraSchedulerOptions {
  // Table 6 ablation: no special placement treatment for elastic jobs.
  bool naive_placement = false;
  // Lyra+TunedJobs (§7.4): adopt a Pollux-style job agent that re-tunes batch
  // size and learning rate whenever the allocation changes.
  bool tuned_jobs = false;
  // Disable phase 2 entirely: allocate base demands only. Used by the
  // capacity-loaning-only studies (§7.3) where elastic scaling is off.
  bool disable_elastic_scaling = false;
  // §10 future work: run without job running-time estimates (least-attained-
  // service ordering, compute-valued knapsack).
  bool information_agnostic = false;
  // Ablation: greedy marginal allocation instead of the knapsack in phase 2.
  bool greedy_phase2 = false;
};

class LyraScheduler : public JobScheduler {
 public:
  explicit LyraScheduler(LyraSchedulerOptions options = {}) : options_(options) {}

  const char* name() const override {
    return options_.tuned_jobs ? "Lyra+TunedJobs" : "Lyra";
  }
  bool tunes_hyperparameters() const override { return options_.tuned_jobs; }
  void Schedule(SchedulerContext& ctx) override;

  const PlacementStats& last_stats() const { return last_stats_; }

 private:
  LyraSchedulerOptions options_;
  PlacementStats last_stats_;
};

}  // namespace lyra

#endif  // SRC_LYRA_LYRA_SCHEDULER_H_
