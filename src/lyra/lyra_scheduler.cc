#include "src/lyra/lyra_scheduler.h"

#include "src/lyra/allocation.h"
#include "src/obs/obs.h"

namespace lyra {

void LyraScheduler::Schedule(SchedulerContext& ctx) {
  AllocationDecision decision;
  {
    AllocationOptions allocation;
    allocation.information_agnostic = options_.information_agnostic;
    allocation.greedy_phase2 = options_.greedy_phase2;
    decision = TwoPhaseAllocate(ctx, allocation);
  }
  if (options_.disable_elastic_scaling) {
    // Base demands only: every flexible target collapses to zero, so any
    // existing flexible workers are also scaled away.
    for (auto& [job, target] : decision.flexible_targets) {
      target = 0;
    }
  }
  {
    obs::PhaseSpan placement_span(obs::Phase::kPlacement);
    PlacementOptions placement;
    placement.naive = options_.naive_placement;
    placement.allow_loaned = ctx.allow_loaned_placement;
    last_stats_ = ApplyAllocation(*ctx.cluster, decision, placement);
  }
  obs::AddCounter("sched.launched", static_cast<std::uint64_t>(last_stats_.launched));
  obs::AddCounter("sched.launch_failures",
                  static_cast<std::uint64_t>(last_stats_.launch_failures));
  obs::AddCounter("sched.scale_outs", static_cast<std::uint64_t>(last_stats_.scale_outs));
  obs::AddCounter("sched.scale_ins", static_cast<std::uint64_t>(last_stats_.scale_ins));
}

}  // namespace lyra
