#include "src/lyra/lyra_scheduler.h"

#include "src/lyra/allocation.h"

namespace lyra {

void LyraScheduler::Schedule(SchedulerContext& ctx) {
  AllocationOptions allocation;
  allocation.information_agnostic = options_.information_agnostic;
  allocation.greedy_phase2 = options_.greedy_phase2;
  AllocationDecision decision = TwoPhaseAllocate(ctx, allocation);
  if (options_.disable_elastic_scaling) {
    // Base demands only: every flexible target collapses to zero, so any
    // existing flexible workers are also scaled away.
    for (auto& [job, target] : decision.flexible_targets) {
      target = 0;
    }
  }
  PlacementOptions placement;
  placement.naive = options_.naive_placement;
  placement.allow_loaned = ctx.allow_loaned_placement;
  last_stats_ = ApplyAllocation(*ctx.cluster, decision, placement);
}

}  // namespace lyra
