#include "src/lyra/orchestrator.h"

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/obs/obs.h"

namespace lyra {

ReclaimResult ResourceOrchestrator::Reconcile(ClusterState& cluster, int target_loaned) {
  LYRA_CHECK_GE(target_loaned, 0);
  const int current = cluster.NumServersInPool(ServerPool::kOnLoan);

  if (target_loaned > current) {
    // Loan: move idle inference servers into the training whitelist. Copy the
    // membership list: LoanServer edits it while we iterate.
    int to_loan = target_loaned - current;
    int loaned = 0;
    const std::vector<ServerId> inference =
        cluster.ServersInPool(ServerPool::kInference);
    for (ServerId id : inference) {
      if (loaned >= to_loan) {
        break;
      }
      if (cluster.server(id).idle() && cluster.LoanServer(id).ok()) {
        ++loaned;
      }
    }
    if (loaned > 0) {
      ++stats_.loan_operations;
      stats_.servers_loaned += loaned;
      obs::AddCounter("orch.servers_loaned", static_cast<std::uint64_t>(loaned));
      LYRA_LOG_DEBUG("orchestrator: loaned %d servers (target %d)", loaned, target_loaned);
    }
    return {};
  }

  if (target_loaned == current) {
    return {};
  }

  // Reclaim: empty and return (current - target) on-loan servers. Idle ones
  // go back for free; the policy picks among the occupied ones.
  int to_return = current - target_loaned;
  int returned = 0;
  const std::vector<ServerId> on_loan = cluster.ServersInPool(ServerPool::kOnLoan);
  for (ServerId id : on_loan) {
    if (returned >= to_return) {
      break;
    }
    if (cluster.server(id).idle()) {
      LYRA_CHECK(cluster.ReturnServer(id).ok());
      ++returned;
    }
  }

  ReclaimResult result;
  if (returned < to_return) {
    {
      obs::PhaseSpan reclaim_span(obs::Phase::kReclaimPolicy);
      result = policy_->Reclaim(cluster, to_return - returned);
    }
    for (ServerId id : result.vacated) {
      if (returned >= to_return) {
        break;  // collateral vacating freed more than needed
      }
      LYRA_CHECK(cluster.ReturnServer(id).ok());
      ++returned;
    }
    stats_.jobs_preempted += static_cast<int>(result.preempted.size());
    stats_.collateral_gpus += result.collateral_gpus;
  }
  if (returned > 0) {
    ++stats_.reclaim_operations;
    stats_.servers_returned += returned;
    obs::AddCounter("orch.servers_returned", static_cast<std::uint64_t>(returned));
    obs::AddCounter("orch.jobs_preempted", result.preempted.size());
    LYRA_LOG_DEBUG("orchestrator: returned %d servers, %zu preemptions", returned,
                   result.preempted.size());
  }
  return result;
}

}  // namespace lyra
