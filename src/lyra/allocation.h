// Two-phase resource allocation (§5.2).
//
// Phase one treats the inelastic workload — inelastic jobs plus the base
// demand of elastic jobs — as the first-class citizen and schedules it with
// shortest-job-first, launching as many jobs as possible. Phase two hands the
// remaining GPUs to elastic jobs' flexible demand by solving a
// multiple-choice knapsack: one group per elastic job, item k = "grow by k
// workers" with weight k * gpus_per_worker and value equal to the estimated
// JCT reduction.
#ifndef SRC_LYRA_ALLOCATION_H_
#define SRC_LYRA_ALLOCATION_H_

#include <vector>

#include "src/sched/scheduler.h"

namespace lyra {

struct AllocationOptions {
  // §10 future work: schedule without knowing running times a priori. Phase
  // one orders jobs by least attained service (Tiresias-style) instead of
  // SJF, and phase two values a flexible worker by the compute it adds
  // rather than by estimated JCT reduction.
  bool information_agnostic = false;
  // Ablation: replace the multiple-choice knapsack of phase two with the
  // greedy local heuristic prior systems use — repeatedly give one worker to
  // the job with the best marginal value per GPU (§2.3 argues the knapsack's
  // global decisions beat this).
  bool greedy_phase2 = false;
};

struct AllocationDecision {
  // Jobs to launch at base demand, in the order phase one admitted them.
  std::vector<Job*> launches;
  // Flexible-worker target (beyond base) for every elastic job that is
  // running or being launched this epoch.
  std::vector<std::pair<Job*, int>> flexible_targets;
};

// Computes the epoch's allocation against the capacity visible in ctx:
// idle training-side GPUs plus GPUs currently held by flexible workers
// (which are available for resizing, §5.2).
AllocationDecision TwoPhaseAllocate(const SchedulerContext& ctx,
                                    const AllocationOptions& options = {});

}  // namespace lyra

#endif  // SRC_LYRA_ALLOCATION_H_
