#include "src/lyra/mckp.h"

#include <algorithm>
#include <cstdint>

#include "src/common/check.h"

namespace lyra {

MckpSolution SolveMckp(const std::vector<MckpGroup>& groups, int capacity) {
  LYRA_CHECK_GE(capacity, 0);
  MckpSolution solution;
  solution.chosen.assign(groups.size(), -1);
  if (groups.empty() || capacity == 0) {
    return solution;
  }

  // Never allocate DP columns beyond what all items together could use.
  int useful_capacity = 0;
  for (const MckpGroup& group : groups) {
    int max_weight = 0;
    for (const MckpItem& item : group.items) {
      LYRA_CHECK_GE(item.weight, 0);
      max_weight = std::max(max_weight, item.weight);
    }
    useful_capacity += max_weight;
  }
  const int cap = std::min(capacity, useful_capacity);
  if (cap == 0) {
    return solution;
  }

  const auto width = static_cast<std::size_t>(cap) + 1;
  std::vector<double> dp(width, 0.0);
  std::vector<double> next(width, 0.0);
  // choice[g][c]: item index taken by group g at capacity c (-1 = none).
  std::vector<std::vector<std::int16_t>> choice(
      groups.size(), std::vector<std::int16_t>(width, -1));

  for (std::size_t g = 0; g < groups.size(); ++g) {
    const MckpGroup& group = groups[g];
    next = dp;  // default: take nothing from this group
    for (std::size_t i = 0; i < group.items.size(); ++i) {
      const MckpItem& item = group.items[i];
      if (item.weight > cap || item.value <= 0.0) {
        continue;
      }
      for (std::size_t c = static_cast<std::size_t>(item.weight); c < width; ++c) {
        const double candidate = dp[c - static_cast<std::size_t>(item.weight)] + item.value;
        if (candidate > next[c]) {
          next[c] = candidate;
          choice[g][c] = static_cast<std::int16_t>(i);
        }
      }
    }
    dp.swap(next);
  }

  // Backtrack from the best capacity.
  std::size_t c = static_cast<std::size_t>(
      std::max_element(dp.begin(), dp.end()) - dp.begin());
  solution.total_value = dp[c];
  for (std::size_t g = groups.size(); g-- > 0;) {
    const int taken = choice[g][c];
    solution.chosen[g] = taken;
    if (taken >= 0) {
      const int weight = groups[g].items[static_cast<std::size_t>(taken)].weight;
      solution.total_weight += weight;
      c -= static_cast<std::size_t>(weight);
    }
  }
  return solution;
}

}  // namespace lyra
