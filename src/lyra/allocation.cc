#include "src/lyra/allocation.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/lyra/mckp.h"
#include "src/sched/elastic_util.h"

namespace lyra {
namespace {

// Free-capacity ledger split by pool, because non-fungible jobs can only
// consume training GPUs. Flexible GPUs count as free: they are available for
// resizing at the epoch (§5.2).
struct CapacityLedger {
  // Capacities in normalized (training-GPU-equivalent) units: on-loan
  // inference GPUs count at their compute factor (§5.2).
  double training = 0.0;
  double loaned = 0.0;

  double total() const { return training + loaned; }

  // Tries to debit `gpus` (normalized) with the given pool preference;
  // returns false and leaves the ledger unchanged if it cannot be covered.
  bool Debit(double gpus, bool can_use_loaned, bool prefer_loaned) {
    if (!can_use_loaned) {
      if (training < gpus) {
        return false;
      }
      training -= gpus;
      return true;
    }
    if (total() < gpus) {
      return false;
    }
    double& first = prefer_loaned ? loaned : training;
    double& second = prefer_loaned ? training : loaned;
    const double from_first = std::min(first, gpus);
    first -= from_first;
    second -= gpus - from_first;
    return true;
  }
};

CapacityLedger BuildLedger(const SchedulerContext& ctx) {
  CapacityLedger ledger;
  const ClusterState& cluster = *ctx.cluster;
  ledger.training = cluster.FreeGpus(ServerPool::kTraining);
  if (ctx.allow_loaned_placement) {
    ledger.loaned = cluster.FreeGpus(ServerPool::kOnLoan) * kInferenceGpuFactor;
  }
  // Flexible workers are resizable: add their GPUs back as capacity.
  for (const Job* job : ctx.running) {
    const JobPlacement* placement = cluster.FindPlacement(job->id());
    if (placement == nullptr) {
      continue;
    }
    for (const auto& [server_id, share] : placement->shares) {
      if (share.flexible_gpus == 0) {
        continue;
      }
      if (cluster.server(server_id).pool() == ServerPool::kOnLoan) {
        if (ctx.allow_loaned_placement) {
          ledger.loaned += share.flexible_gpus * kInferenceGpuFactor;
        }
      } else {
        ledger.training += share.flexible_gpus;
      }
    }
  }
  return ledger;
}

}  // namespace

AllocationDecision TwoPhaseAllocate(const SchedulerContext& ctx,
                                    const AllocationOptions& options) {
  AllocationDecision decision;
  CapacityLedger ledger = BuildLedger(ctx);

  // --- Phase 1: SJF over the inelastic workload ------------------------------
  // Heterogeneous-capable jobs are considered with the lowest priority, after
  // everything else is scheduled (§6).
  std::vector<Job*> order = ctx.pending;
  std::stable_sort(order.begin(), order.end(), [&](const Job* a, const Job* b) {
    const bool ha = a->spec().heterogeneous;
    const bool hb = b->spec().heterogeneous;
    if (ha != hb) {
      return hb;  // non-heterogeneous first
    }
    if (options.information_agnostic) {
      // Least attained service: favor jobs that have made the least progress
      // so far (all unstarted jobs tie and keep arrival order).
      return (a->spec().total_work - a->work_remaining()) <
             (b->spec().total_work - b->work_remaining());
    }
    return a->EstimatedRemainingTime(a->spec().max_workers) <
           b->EstimatedRemainingTime(b->spec().max_workers);
  });

  for (Job* job : order) {
    const JobSpec& spec = job->spec();
    const double need = static_cast<double>(spec.min_workers * spec.gpus_per_worker);
    const bool can_use_loaned =
        ctx.allow_loaned_placement && (spec.fungible || spec.heterogeneous);
    // Elastic jobs prefer on-loan servers so reclaiming can scale them in
    // rather than preempt; heterogeneous base demand stays on training (§6).
    const bool prefer_loaned = spec.elastic() && !spec.heterogeneous;
    if (ledger.Debit(need, can_use_loaned, prefer_loaned)) {
      decision.launches.push_back(job);
    }
    // Jobs that do not fit are simply removed from the pool this epoch (§5.2).
  }

  // --- Phase 2: multiple-choice knapsack over flexible demand ----------------
  std::vector<Job*> elastic;
  for (Job* job : ctx.running) {
    if (job->spec().elastic()) {
      elastic.push_back(job);
    }
  }
  for (Job* job : decision.launches) {
    if (job->spec().elastic()) {
      elastic.push_back(job);
    }
  }
  if (elastic.empty()) {
    return decision;
  }

  std::vector<MckpGroup> groups;
  groups.reserve(elastic.size());
  for (Job* job : elastic) {
    const JobSpec& spec = job->spec();
    MckpGroup group;
    const TimeSec base_time = job->EstimatedRemainingTime(spec.min_workers);
    for (int k = 1; k <= spec.max_workers - spec.min_workers; ++k) {
      MckpItem item;
      item.weight = k * spec.gpus_per_worker;
      if (options.information_agnostic) {
        // Without running-time estimates, value a grant by the compute it
        // adds so the remaining GPUs are simply kept busy.
        item.value = static_cast<double>(k);
      } else {
        item.value = base_time - job->EstimatedRemainingTime(spec.min_workers + k);
      }
      group.items.push_back(item);
    }
    groups.push_back(std::move(group));
  }

  const int capacity = static_cast<int>(ledger.total());
  if (options.greedy_phase2) {
    // AFS-style local heuristic: one worker at a time to the job with the
    // best marginal value per GPU.
    std::vector<int> granted(elastic.size(), 0);
    int remaining = capacity;
    while (true) {
      std::size_t best = groups.size();
      double best_ratio = 0.0;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        const int next = granted[g];
        if (next >= static_cast<int>(groups[g].items.size())) {
          continue;
        }
        const MckpItem& item = groups[g].items[static_cast<std::size_t>(next)];
        const double prev_value =
            next == 0 ? 0.0 : groups[g].items[static_cast<std::size_t>(next - 1)].value;
        const int step_weight = elastic[g]->spec().gpus_per_worker;
        if (step_weight > remaining) {
          continue;
        }
        const double ratio = (item.value - prev_value) / step_weight;
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best = g;
        }
      }
      if (best == groups.size()) {
        break;
      }
      ++granted[best];
      remaining -= elastic[best]->spec().gpus_per_worker;
    }
    for (std::size_t g = 0; g < elastic.size(); ++g) {
      decision.flexible_targets.emplace_back(elastic[g], granted[g]);
    }
    return decision;
  }

  const MckpSolution solution = SolveMckp(groups, capacity);
  for (std::size_t g = 0; g < elastic.size(); ++g) {
    const int chosen = solution.chosen[g];
    decision.flexible_targets.emplace_back(elastic[g], chosen < 0 ? 0 : chosen + 1);
  }
  return decision;
}

}  // namespace lyra
