// Worker placement (§5.3).
//
// Best-fit-decreasing bin packing: jobs are placed in decreasing order of
// per-worker GPU demand; each worker goes to the non-empty server that best
// fits it, falling back to a fresh server. Elastic jobs prefer on-loan
// (inference) servers to maximize scale-in opportunities during reclaiming;
// inelastic jobs prefer training servers. The base and flexible demands of
// elastic jobs are kept on separate groups of inference servers so the
// flexible group can be released first, preemption-free, when reclaiming.
#ifndef SRC_LYRA_PLACEMENT_H_
#define SRC_LYRA_PLACEMENT_H_

#include "src/lyra/allocation.h"

namespace lyra {

struct PlacementOptions {
  // Table 6 ablation: place elastic jobs on training servers first like
  // inelastic ones and drop the base/flexible server grouping.
  bool naive = false;
  // Whether on-loan servers may be used at all this scenario.
  bool allow_loaned = true;
};

struct PlacementStats {
  int launched = 0;
  int launch_failures = 0;  // admitted by phase 1 but unplaceable (fragmentation)
  int scale_outs = 0;       // flexible workers added
  int scale_ins = 0;        // flexible workers removed
};

// Applies the allocation decision to the cluster: scale-ins first, then BFD
// launches, then flexible scale-outs. Launch placement is all-or-nothing per
// job; scale-outs place as many of the target workers as fit.
PlacementStats ApplyAllocation(ClusterState& cluster, const AllocationDecision& decision,
                               const PlacementOptions& options);

}  // namespace lyra

#endif  // SRC_LYRA_PLACEMENT_H_
