// Multiple-choice knapsack solver (§5.2).
//
// Lyra's phase-two allocation packs "grow job j by k workers" items into the
// knapsack of remaining GPUs, taking at most one item per job. The problem is
// NP-hard but pseudo-polynomial via dynamic programming over capacity; the
// paper reports sub-hundredth-second solve times at production scale (354
// items, 245 GPUs), which bench_micro_algorithms reproduces.
#ifndef SRC_LYRA_MCKP_H_
#define SRC_LYRA_MCKP_H_

#include <vector>

namespace lyra {

struct MckpItem {
  int weight = 0;      // GPUs consumed
  double value = 0.0;  // JCT reduction (seconds)
};

// One group per elastic job; at most one item may be chosen per group.
struct MckpGroup {
  std::vector<MckpItem> items;
};

struct MckpSolution {
  double total_value = 0.0;
  int total_weight = 0;
  // Chosen item index per group, -1 when the group takes nothing.
  std::vector<int> chosen;
};

// Exact DP solution. Capacity and weights must be non-negative. Runs in
// O(capacity * total_items) time and O(num_groups * capacity) space.
MckpSolution SolveMckp(const std::vector<MckpGroup>& groups, int capacity);

}  // namespace lyra

#endif  // SRC_LYRA_MCKP_H_
