// Always-on service telemetry plane (DESIGN.md §9).
//
// The daemon's hot paths must be able to explain their own latency without
// paying for the explanation. The design is sharding by writer thread: every
// I/O thread (and the engine thread) owns one TelemetryShard and is its only
// writer; recording is a handful of relaxed atomic stores into cache lines no
// other thread writes — no contended counters, no locks, no allocation.
// Scrapers (the /metrics exposition, the stats_prom command, lyra_top) merge
// the shards at read time into ordinary obs::Histograms, so all the cost of
// aggregation lands on the cold scrape path.
//
// Readers race with writers by design: every field is an atomic accessed
// relaxed, so a scrape may observe a histogram mid-increment (count ahead of
// sum, or vice versa) and a flight-recorder span mid-overwrite. Scrapes are
// statistical, the flight recorder is forensic; both tolerate that slack and
// neither perturbs the writers.
//
// Each shard also carries the flight recorder: a fixed ring of recent
// request spans (connection, command, seq, queue depth, duration) that
// trace_dump / SIGUSR1 snapshot into a Perfetto-loadable trace. Writers
// overwrite the oldest span; the ring is never drained.
#ifndef SRC_SVC_TELEMETRY_H_
#define SRC_SVC_TELEMETRY_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace lyra::svc {

// Every command the wire protocol knows, plus kOther for malformed frames.
// Indexes the per-shard latency histograms and names flight-recorder spans.
enum class TelemetryCmd : std::uint8_t {
  kSubmit = 0,
  kCancel,
  kAdvance,
  kDrain,
  kSnapshot,
  kShutdown,
  kQueryJob,
  kClusterStats,
  kMetrics,
  kPing,
  kStatsProm,
  kTraceDump,
  kMigrate,           // federation: cancel-on-source + resubmit-on-dest chain
  kFederationStats,   // federation: merged per-cluster read
  kOther,
  // Engine-thread span names only; never recorded as request latency.
  kBatchApply,
  kSnapshotPublish,
};
inline constexpr int kTelemetryCmdCount = 17;
// Wire commands tracked in the request-duration histograms (excludes the
// engine-internal span kinds above).
inline constexpr int kTelemetryWireCmdCount = 15;

const char* TelemetryCmdName(TelemetryCmd cmd);
TelemetryCmd TelemetryCmdFromName(const std::string& name);

// Monotonic nanoseconds used for all telemetry stamps.
inline std::uint64_t TelemetryNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Log2-bucketed histogram with a single writer and racy readers: bucket i
// counts samples <= 2^i (raw units), i in [0, kBucketCount), plus an
// overflow bucket. Recording is a bit-scan and two relaxed stores; there is
// deliberately no compare-and-swap anywhere — the owning thread is the only
// writer, readers only ever load.
class Log2Histogram {
 public:
  static constexpr int kBucketCount = 36;  // finite bounds 2^0 .. 2^35

  void Record(std::uint64_t value) {
    int bucket = 0;
    if (value > 1) {
      bucket = std::bit_width(value - 1);  // ceil(log2(value))
      if (bucket > kBucketCount) {
        bucket = kBucketCount;  // overflow
      }
    }
    counts_[bucket].store(counts_[bucket].load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + value,
               std::memory_order_relaxed);
  }

  std::uint64_t TotalCount() const {
    std::uint64_t total = 0;
    for (const auto& c : counts_) {
      total += c.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Materializes the current counts as an obs::Histogram whose bounds are
  // 2^i * scale (scale = 1e-9 turns nanosecond samples into second bounds).
  obs::Histogram ToHistogram(double scale) const;

  // The bucket bounds ToHistogram(scale) uses.
  static std::vector<double> Bounds(double scale);

 private:
  std::atomic<std::uint64_t> counts_[kBucketCount + 1] = {};
  std::atomic<std::uint64_t> sum_{0};
};

// Single-writer counter / high-watermark; readers are racy and relaxed.
class ShardCounter {
 public:
  void Add(std::uint64_t n) {
    value_.store(value_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }
  void NoteMax(std::uint64_t v) {
    if (v > value_.load(std::memory_order_relaxed)) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// One flight-recorder record, as collected (plain struct).
struct RequestSpan {
  std::uint64_t start_ns = 0;  // TelemetryNowNs at decode / batch start
  std::uint64_t dur_ns = 0;
  std::uint64_t conn = 0;  // connection id; engine spans use the log seq
  std::uint64_t seq = 0;   // per-connection slot seq / engine batch size
  std::uint32_t queue_depth = 0;  // engine queue length when recorded
  TelemetryCmd cmd = TelemetryCmd::kOther;
  std::uint8_t shard = 0;  // index of the recording shard
};

// Fixed ring of recent spans. The owning thread writes; Collect (any
// thread) reads racily — a span being overwritten during a dump can come
// out as a blend of two requests, which a forensic ring accepts in exchange
// for a zero-coordination hot path.
class SpanRing {
 public:
  static constexpr std::size_t kCapacity = 4096;

  void Record(std::uint64_t start_ns, std::uint64_t dur_ns, std::uint64_t conn,
              std::uint64_t seq, std::uint32_t queue_depth, TelemetryCmd cmd) {
    Slot& slot = slots_[head_.load(std::memory_order_relaxed) % kCapacity];
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
    slot.conn.store(conn, std::memory_order_relaxed);
    slot.seq.store(seq, std::memory_order_relaxed);
    slot.queue_depth.store(queue_depth, std::memory_order_relaxed);
    slot.cmd.store(static_cast<std::uint8_t>(cmd), std::memory_order_relaxed);
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  // Appends up to kCapacity recorded spans to `out`, oldest first.
  void Collect(std::uint8_t shard_index, std::vector<RequestSpan>* out) const;

  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint64_t> conn{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint32_t> queue_depth{0};
    std::atomic<std::uint8_t> cmd{0};
  };
  Slot slots_[kCapacity];
  std::atomic<std::uint64_t> head_{0};
};

// One writer thread's telemetry block. I/O threads use the request/transport
// fields; the engine thread uses the engine_* histograms. The struct is
// uniform so scrape-time merging never cares who wrote what.
struct TelemetryShard {
  explicit TelemetryShard(std::string role_name) : role(std::move(role_name)) {}

  const std::string role;  // "io0", "io1", ..., "engine"

  // Request latency, decode -> reply-queued, nanoseconds, per command.
  Log2Histogram cmd_latency[kTelemetryWireCmdCount];
  // epoll_wait return -> event dispatch, nanoseconds.
  Log2Histogram dispatch_lag;
  // Ready epoll events per wakeup.
  Log2Histogram wake_events;
  // Engine completions materialized per mailbox drain.
  Log2Histogram completion_batch;

  // Engine thread only.
  Log2Histogram engine_batch_apply;       // ns per applied batch
  Log2Histogram engine_snapshot_publish;  // ns per snapshot publish
  Log2Histogram engine_batch_commands;    // commands per applied batch

  ShardCounter bytes_in;
  ShardCounter bytes_out;
  ShardCounter frames_in;
  ShardCounter frames_out;
  ShardCounter write_queue_peak;  // high-watermark of queued reply bytes

  SpanRing spans;

  void RecordCmd(TelemetryCmd cmd, std::uint64_t dur_ns) {
    const int index = static_cast<int>(cmd);
    if (index < kTelemetryWireCmdCount) {
      cmd_latency[index].Record(dur_ns);
    }
  }
};

// Scrape-time merge of every shard, in plain (non-atomic) form.
struct TelemetrySummary {
  struct ShardCounters {
    std::string role;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t write_queue_peak = 0;
    std::uint64_t spans_recorded = 0;
  };

  // Indexed by TelemetryCmd, merged across shards; seconds.
  std::vector<obs::Histogram> cmd_latency;
  std::vector<obs::Histogram> dispatch_lag;        // one element, seconds
  std::vector<obs::Histogram> wake_events;         // one element, events
  std::vector<obs::Histogram> completion_batch;    // one element, completions
  std::vector<obs::Histogram> engine_batch_apply;  // one element, seconds
  std::vector<obs::Histogram> engine_snapshot_publish;  // one element, seconds
  std::vector<obs::Histogram> engine_batch_commands;    // one element, commands
  std::vector<ShardCounters> shards;
};

// The registry: owns the shards, hands one to each writer thread, merges at
// scrape time. Shard allocation is mutex-guarded (it happens a handful of
// times at thread startup); everything after that is lock-free.
class Telemetry {
 public:
  static constexpr std::size_t kMaxShards = 64;

  Telemetry();

  // Returns this writer thread's block. Stable address for the Telemetry
  // lifetime; nullptr once kMaxShards threads registered (callers then skip
  // recording — correctness never depends on telemetry).
  TelemetryShard* AcquireShard(const std::string& role);

  // Wall-clock epoch spans are stamped against (construction time).
  std::uint64_t epoch_ns() const { return epoch_ns_; }

  // Merges every shard into plain histograms/counters. Any thread.
  TelemetrySummary Collect() const;

  // Gathers every shard's flight-recorder ring, merged and sorted by start
  // time. Any thread.
  std::vector<RequestSpan> CollectSpans() const;

 private:
  const std::uint64_t epoch_ns_;
  mutable std::mutex mu_;  // guards shard creation only
  std::unique_ptr<TelemetryShard> shards_[kMaxShards];
  std::atomic<std::size_t> shard_count_{0};
};

}  // namespace lyra::svc

#endif  // SRC_SVC_TELEMETRY_H_
