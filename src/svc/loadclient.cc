#include "src/svc/loadclient.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "src/svc/prom.h"
#include "src/svc/wire.h"

namespace lyra::svc {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kRecvChunk = 64 * 1024;

// One send batch's worth of in-flight frames: every frame in a batch shares
// one stamp, so FIFO matching works on (stamp, count) runs instead of a
// deque entry per frame — the client must stay cheaper than the daemon it
// measures, and per-frame bookkeeping was its biggest cost at saturation.
// `first` is the connection-local index of the run's first frame; frame k's
// *intended* send time is start + k * interval, which differs from `stamp`
// whenever the blocking write paced the sender (see the coordinated-omission
// note on ReceiverLoop).
struct InFlightRun {
  Clock::time_point stamp;
  std::uint64_t first = 0;
  std::uint64_t count = 0;
};

struct Connection {
  int fd = -1;
  std::mutex mu;
  std::deque<InFlightRun> in_flight;  // send-batch runs, FIFO
  std::vector<double> latencies_ms;
  std::vector<double> corrected_ms;
  std::uint64_t in_flight_frames = 0;  // under mu
  std::uint64_t backlog_max = 0;       // high-watermark of in_flight_frames
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t errors = 0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// Replies are classified without a JSON parse: at saturation rates the
// client must stay cheaper than the daemon it measures. Accepted replies
// start with `{"ok":true` (the service emits "ok" first); everything else
// is inspected for the overload code only.
void Classify(const std::string& payload, Connection* conn) {
  if (payload.rfind("{\"ok\":true", 0) == 0) {
    ++conn->ok;
  } else if (payload.find("\"code\":\"overloaded\"") != std::string::npos) {
    ++conn->overloaded;
  } else {
    ++conn->errors;
  }
}

void SenderLoop(Connection* conn, const std::string& payload, double interval_s,
                Clock::time_point start, Clock::time_point deadline) {
  const std::string framed = EncodeFrame(payload);
  // Every frame is identical, so a batch is a slice of this pre-built block
  // — no per-frame memcpy into a staging buffer at send time.
  constexpr std::size_t kBlockFrames = 256;
  std::string block;
  block.reserve(framed.size() * kBlockFrames);
  for (std::size_t i = 0; i < kBlockFrames; ++i) {
    block.append(framed);
  }
  std::uint64_t scheduled = 0;
  for (;;) {
    const Clock::time_point now = Clock::now();
    if (now >= deadline) {
      break;
    }
    // Everything due by `now` goes out as one batch. Under a rate the daemon
    // cannot absorb, the blocking write itself paces us and the next wakeup
    // materializes a correspondingly larger batch.
    const double elapsed = std::chrono::duration<double>(now - start).count();
    const std::uint64_t due =
        static_cast<std::uint64_t>(elapsed / interval_s) + 1;
    if (due > scheduled) {
      const std::uint64_t batch = due - scheduled;
      const Clock::time_point stamp = Clock::now();
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->in_flight.push_back({stamp, scheduled, batch});
        conn->in_flight_frames += batch;
        conn->backlog_max = std::max(conn->backlog_max, conn->in_flight_frames);
      }
      std::uint64_t remaining = batch;
      bool failed = false;
      while (remaining > 0) {
        const std::uint64_t n =
            std::min<std::uint64_t>(remaining, kBlockFrames);
        if (!WriteAllBytes(conn->fd, block.data(), n * framed.size()).ok()) {
          failed = true;
          break;
        }
        remaining -= n;
      }
      conn->sent += batch - remaining;
      if (failed) {
        std::lock_guard<std::mutex> lock(conn->mu);
        // Remove the unsent tail of the batch from the in-flight run.
        if (!conn->in_flight.empty()) {
          conn->in_flight.back().count -= remaining;
          conn->in_flight_frames -= remaining;
          if (conn->in_flight.back().count == 0) {
            conn->in_flight.pop_back();
          }
        }
        break;
      }
      scheduled = due;
    }
    const Clock::time_point next =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(scheduled) * interval_s));
    std::this_thread::sleep_until(std::min(next, deadline));
  }
  // Half-close: the daemon answers everything pipelined, then sees EOF and
  // closes, which cleanly terminates the receiver.
  ::shutdown(conn->fd, SHUT_WR);
}

// Drains replies and matches them to sends FIFO. Two latencies per reply:
//
//   achieved  = now - the instant the frame's batch actually hit the wire
//   corrected = now - the instant the frame was *scheduled* to be sent
//               (start + index * interval)
//
// The difference is coordinated omission: when the daemon backlogs, the
// blocking write paces the sender, frames go out late, and achieved latency
// silently excludes exactly the queueing delay a saturated server inflicted.
// The corrected percentiles charge that deferral back to the server, which
// is what an open-loop sweep is supposed to measure.
void ReceiverLoop(Connection* conn, Clock::time_point start,
                  double interval_s) {
  FrameDecoder decoder;
  std::string payload;
  char buf[kRecvChunk];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return;  // clean EOF after half-close, or transport failure
    }
    decoder.Append(buf, static_cast<std::size_t>(n));
    // Classify every frame in this chunk, then match stamps FIFO under one
    // lock — at saturation a chunk carries hundreds of replies and the
    // receiver must not take a mutex per frame.
    std::size_t frames = 0;
    bool broken = false;
    for (;;) {
      StatusOr<bool> next = decoder.Next(&payload);
      if (!next.ok()) {
        ++conn->errors;
        broken = true;
        break;
      }
      if (!next.value()) {
        break;
      }
      Classify(payload, conn);
      ++frames;
    }
    if (frames > 0) {
      const Clock::time_point now = Clock::now();
      std::size_t unmatched = frames;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        while (unmatched > 0 && !conn->in_flight.empty()) {
          InFlightRun& run = conn->in_flight.front();
          const std::uint64_t take =
              std::min<std::uint64_t>(unmatched, run.count);
          const double ms =
              std::chrono::duration<double, std::milli>(now - run.stamp)
                  .count();
          conn->latencies_ms.insert(conn->latencies_ms.end(), take, ms);
          // Corrected latencies differ per frame within a run: frame
          // run.first + j was due at start + (run.first + j) * interval.
          const double now_ms =
              std::chrono::duration<double, std::milli>(now - start).count();
          for (std::uint64_t j = 0; j < take; ++j) {
            const double intended_ms =
                static_cast<double>(run.first + j) * interval_s * 1e3;
            conn->corrected_ms.push_back(now_ms - intended_ms);
          }
          run.first += take;
          run.count -= take;
          conn->in_flight_frames -= take;
          unmatched -= take;
          if (run.count == 0) {
            conn->in_flight.pop_front();
          }
        }
      }
      conn->errors += unmatched;  // replies without a matching send
    }
    if (broken) {
      return;
    }
  }
}

}  // namespace

StatusOr<obs::Histogram> ScrapeServerHistogram(const LoadClientOptions& options,
                                               const std::string& cmd) {
  StatusOr<int> fd =
      ConnectEndpoint(options.unix_path, options.tcp_host, options.tcp_port);
  if (!fd.ok()) {
    return fd.status();
  }
  const Status sent = WriteFrame(fd.value(), "{\"cmd\":\"stats_prom\"}");
  if (!sent.ok()) {
    ::close(fd.value());
    return sent;
  }
  StatusOr<std::string> reply = ReadFrame(fd.value());
  ::close(fd.value());
  if (!reply.ok()) {
    return reply.status();
  }
  StatusOr<JsonValue> parsed = JsonValue::Parse(reply.value());
  if (!parsed.ok()) {
    return parsed.status();
  }
  if (!parsed.value().GetBool("ok", false)) {
    return Status::Internal("stats_prom refused: " + reply.value());
  }
  StatusOr<PromScrape> scrape =
      ParsePrometheus(parsed.value().GetString("text", ""));
  if (!scrape.ok()) {
    return scrape.status();
  }
  return ExtractHistogram(scrape.value(), "lyra_svc_request_duration_seconds",
                          {{"cmd", cmd}});
}

StatusOr<LoadPoint> RunOpenLoop(const LoadClientOptions& options) {
  if (options.rate <= 0.0 || options.duration_s <= 0.0 ||
      options.connections <= 0 || options.payload.empty()) {
    return Status::InvalidArgument(
        "load client needs rate, duration, connections > 0 and a payload");
  }
  // Pre-run scrape; NotFound is the normal fresh-daemon case (zero-count
  // families are not exported) and leaves the window un-differenced.
  StatusOr<obs::Histogram> before = Status::NotFound("scrape disabled");
  if (options.scrape_server) {
    before = ScrapeServerHistogram(options, "submit");
  }
  std::vector<std::unique_ptr<Connection>> conns;
  for (int i = 0; i < options.connections; ++i) {
    StatusOr<int> fd =
        ConnectEndpoint(options.unix_path, options.tcp_host, options.tcp_port);
    if (!fd.ok()) {
      for (const auto& conn : conns) {
        ::close(conn->fd);
      }
      return fd.status();
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd.value();
    // Reserve the expected sample count so the receiver never reallocates
    // its latency vector mid-measurement (capped for absurd rate*duration).
    const double expected =
        options.rate * options.duration_s / options.connections;
    conn->latencies_ms.reserve(static_cast<std::size_t>(
        std::min(expected * 1.25, 8e6)));
    conn->corrected_ms.reserve(conn->latencies_ms.capacity());
    conns.push_back(std::move(conn));
  }

  const double interval_s =
      static_cast<double>(options.connections) / options.rate;
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));

  std::vector<std::thread> threads;
  threads.reserve(conns.size() * 2);
  for (auto& conn : conns) {
    threads.emplace_back(SenderLoop, conn.get(), options.payload, interval_s,
                         start, deadline);
    threads.emplace_back(ReceiverLoop, conn.get(), start, interval_s);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();

  LoadPoint point;
  point.offered_rate = options.rate;
  point.wall_s = wall;
  point.connections = options.connections;
  std::vector<double> latencies;
  std::vector<double> corrected;
  for (auto& conn : conns) {
    ::close(conn->fd);
    point.sent += conn->sent;
    point.ok += conn->ok;
    point.overloaded += conn->overloaded;
    point.errors += conn->errors;
    point.backlog_max = std::max(point.backlog_max, conn->backlog_max);
    latencies.insert(latencies.end(), conn->latencies_ms.begin(),
                     conn->latencies_ms.end());
    corrected.insert(corrected.end(), conn->corrected_ms.begin(),
                     conn->corrected_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(corrected.begin(), corrected.end());
  point.accepted_per_s =
      wall > 0.0 ? static_cast<double>(point.ok) / wall : 0.0;
  point.p50_ms = Percentile(latencies, 0.50);
  point.p90_ms = Percentile(latencies, 0.90);
  point.p99_ms = Percentile(latencies, 0.99);
  point.p999_ms = Percentile(latencies, 0.999);
  point.max_ms = latencies.empty() ? 0.0 : latencies.back();
  point.samples = latencies.size();
  point.corrected_p50_ms = Percentile(corrected, 0.50);
  point.corrected_p90_ms = Percentile(corrected, 0.90);
  point.corrected_p99_ms = Percentile(corrected, 0.99);
  point.corrected_p999_ms = Percentile(corrected, 0.999);
  point.corrected_max_ms = corrected.empty() ? 0.0 : corrected.back();

  if (options.scrape_server) {
    // Every reply has been received, so the daemon has already recorded each
    // request into its histograms — no settle delay needed.
    StatusOr<obs::Histogram> after = ScrapeServerHistogram(options, "submit");
    if (after.ok()) {
      obs::Histogram window = after.value();
      if (before.ok()) {
        window.Subtract(before.value());
      }
      point.server_samples = window.count();
      if (point.server_samples > 0) {
        point.server_p50_ms = window.Quantile(0.50) * 1e3;
        point.server_p90_ms = window.Quantile(0.90) * 1e3;
        point.server_p99_ms = window.Quantile(0.99) * 1e3;
        point.server_p999_ms = window.Quantile(0.999) * 1e3;
      }
    }
  }
  return point;
}

JsonValue LoadPointJson(const LoadPoint& point) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("rate_target", JsonValue::MakeNumber(point.offered_rate));
  out.Set("duration_sec", JsonValue::MakeNumber(point.wall_s));
  out.Set("connections", JsonValue::MakeNumber(point.connections));
  out.Set("sent", JsonValue::MakeNumber(static_cast<double>(point.sent)));
  out.Set("ok", JsonValue::MakeNumber(static_cast<double>(point.ok)));
  out.Set("overloaded",
          JsonValue::MakeNumber(static_cast<double>(point.overloaded)));
  out.Set("errors", JsonValue::MakeNumber(static_cast<double>(point.errors)));
  out.Set("submits_per_sec", JsonValue::MakeNumber(point.accepted_per_s));
  out.Set("latency_ms_p50", JsonValue::MakeNumber(point.p50_ms));
  out.Set("latency_ms_p90", JsonValue::MakeNumber(point.p90_ms));
  out.Set("latency_ms_p99", JsonValue::MakeNumber(point.p99_ms));
  out.Set("latency_ms_p999", JsonValue::MakeNumber(point.p999_ms));
  out.Set("latency_ms_max", JsonValue::MakeNumber(point.max_ms));
  out.Set("latency_ms_corrected_p50",
          JsonValue::MakeNumber(point.corrected_p50_ms));
  out.Set("latency_ms_corrected_p90",
          JsonValue::MakeNumber(point.corrected_p90_ms));
  out.Set("latency_ms_corrected_p99",
          JsonValue::MakeNumber(point.corrected_p99_ms));
  out.Set("latency_ms_corrected_p999",
          JsonValue::MakeNumber(point.corrected_p999_ms));
  out.Set("latency_ms_corrected_max",
          JsonValue::MakeNumber(point.corrected_max_ms));
  out.Set("backlog_max",
          JsonValue::MakeNumber(static_cast<double>(point.backlog_max)));
  if (point.server_samples > 0) {
    out.Set("server_latency_ms_p50", JsonValue::MakeNumber(point.server_p50_ms));
    out.Set("server_latency_ms_p90", JsonValue::MakeNumber(point.server_p90_ms));
    out.Set("server_latency_ms_p99", JsonValue::MakeNumber(point.server_p99_ms));
    out.Set("server_latency_ms_p999",
            JsonValue::MakeNumber(point.server_p999_ms));
    out.Set("server_samples",
            JsonValue::MakeNumber(static_cast<double>(point.server_samples)));
  }
  return out;
}

}  // namespace lyra::svc
