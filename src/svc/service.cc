#include "src/svc/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/common/check.h"
#include "src/obs/trace_exporter.h"

namespace lyra::svc {
namespace {

// Events the engine processes per auto-advance chunk before re-checking the
// command queue; bounds command latency while the engine free-runs.
constexpr std::uint64_t kAutoStepChunk = 4096;

constexpr double kInfinity = std::numeric_limits<double>::infinity();

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDataLoss:
      return "data_loss";
  }
  return "unknown";
}

JsonValue ErrorReply(const char* code, const std::string& message) {
  JsonValue reply = JsonValue::MakeObject();
  reply.Set("ok", JsonValue::MakeBool(false));
  reply.Set("code", JsonValue::MakeString(code));
  reply.Set("error", JsonValue::MakeString(message));
  return reply;
}

JsonValue StatusReply(const Status& status) {
  return ErrorReply(CodeName(status.code()), status.message());
}

JsonValue OkReply() {
  JsonValue reply = JsonValue::MakeObject();
  reply.Set("ok", JsonValue::MakeBool(true));
  return reply;
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kRunning:
      return "running";
    case JobState::kFinished:
      return "finished";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

bool ModelFamilyFromName(const std::string& name, ModelFamily* family) {
  for (ModelFamily candidate :
       {ModelFamily::kResNet, ModelFamily::kVgg, ModelFamily::kBert,
        ModelFamily::kGnmt, ModelFamily::kOther}) {
    if (name == ModelFamilyName(candidate)) {
      *family = candidate;
      return true;
    }
  }
  // Lowercase shorthands for hand-typed commands.
  if (name == "resnet") {
    *family = ModelFamily::kResNet;
  } else if (name == "vgg") {
    *family = ModelFamily::kVgg;
  } else if (name == "bert") {
    *family = ModelFamily::kBert;
  } else if (name == "gnmt") {
    *family = ModelFamily::kGnmt;
  } else if (name == "other" || name.empty()) {
    *family = ModelFamily::kOther;
  } else {
    return false;
  }
  return true;
}

JsonValue PoolStats(const ClusterState& cluster, ServerPool pool) {
  JsonValue stats = JsonValue::MakeObject();
  stats.Set("servers", JsonValue::MakeNumber(cluster.NumServersInPool(pool)));
  stats.Set("total_gpus", JsonValue::MakeNumber(cluster.TotalGpus(pool)));
  stats.Set("used_gpus", JsonValue::MakeNumber(cluster.UsedGpus(pool)));
  stats.Set("free_gpus", JsonValue::MakeNumber(cluster.FreeGpus(pool)));
  return stats;
}

}  // namespace

SchedulerService::SchedulerService(ServiceOptions options,
                                   std::unique_ptr<TimeDriver> driver)
    : options_(std::move(options)), driver_(std::move(driver)) {
  LYRA_CHECK(driver_ != nullptr);
  LYRA_CHECK_GT(options_.queue_capacity, 0);
}

SchedulerService::~SchedulerService() { Stop(); }

Status SchedulerService::Start() {
  StatusOr<Engine> built = BuildEngine(options_.engine, options_.trace_path);
  if (!built.ok()) {
    return built.status();
  }
  engine_ = std::move(built.value());
  engine_.sim->Begin();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  engine_thread_ = std::thread(&SchedulerService::EngineLoop, this);
  return Status::Ok();
}

Status SchedulerService::Restore(const std::string& snapshot_path) {
  StatusOr<ServiceSnapshot> loaded = LoadSnapshot(snapshot_path);
  if (!loaded.ok()) {
    return loaded.status();
  }
  ServiceSnapshot& snapshot = loaded.value();
  options_.engine = snapshot.config;
  StatusOr<Engine> built = BuildEngine(options_.engine, options_.trace_path);
  if (!built.ok()) {
    return built.status();
  }
  engine_ = std::move(built.value());
  engine_.sim->Begin();
  // Replay: the exact discipline the live service used — step to the stamp,
  // re-apply. Event sequencing is a pure function of this command list, so
  // the rebuilt engine's decision log matches the original's byte-for-byte.
  for (const LoggedCommand& cmd : snapshot.commands) {
    const Status replayed = ReplayCommand(cmd);
    if (!replayed.ok()) {
      return replayed;
    }
  }
  engine_.sim->StepUntil(snapshot.horizon);
  driver_->AdvanceTo(engine_.sim->now());
  log_ = std::move(snapshot.commands);
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  engine_thread_ = std::thread(&SchedulerService::EngineLoop, this);
  return Status::Ok();
}

Status SchedulerService::ReplayCommand(const LoggedCommand& cmd) {
  Simulator& sim = *engine_.sim;
  switch (cmd.kind) {
    case CommandKind::kSubmit: {
      sim.StepUntil(cmd.stamp);
      const StatusOr<JobId> id = sim.SubmitJob(cmd.spec);
      if (!id.ok()) {
        return Status::DataLoss("snapshot replay: submit failed: " +
                                id.status().message());
      }
      return Status::Ok();
    }
    case CommandKind::kCancel: {
      sim.StepUntil(cmd.stamp);
      const Status status = sim.CancelJob(JobId(cmd.job));
      if (!status.ok()) {
        return Status::DataLoss("snapshot replay: cancel failed: " +
                                status.message());
      }
      return Status::Ok();
    }
    case CommandKind::kAdvance:
      sim.StepUntil(cmd.stamp);
      return Status::Ok();
    case CommandKind::kDrain:
      sim.StepUntil(kInfinity);
      return Status::Ok();
  }
  return Status::DataLoss("snapshot replay: unknown command kind");
}

void SchedulerService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      stopped_.store(true, std::memory_order_release);
      return;
    }
    stop_requested_ = true;
  }
  stopped_.store(true, std::memory_order_release);
  cv_.notify_all();
  driver_->Interrupt();
  if (engine_thread_.joinable()) {
    engine_thread_.join();
  }
  if (engine_.sim != nullptr && !finalized_) {
    finalized_ = true;
    engine_.sim->Finalize();  // closes meters, writes the trace file
  }
}

SchedulerService::Stats SchedulerService::stats() const {
  Stats stats;
  stats.commands_applied = commands_applied_.load(std::memory_order_relaxed);
  stats.jobs_submitted = jobs_submitted_.load(std::memory_order_relaxed);
  stats.jobs_cancelled = jobs_cancelled_.load(std::memory_order_relaxed);
  stats.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  stats.command_errors = command_errors_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.queue_depth = queue_.size();
  stats.queue_peak = queue_peak_;
  return stats;
}

JsonValue SchedulerService::Execute(const JsonValue& request) {
  if (stopped()) {
    return ErrorReply("unavailable", "service is stopped");
  }
  auto cmd = std::make_shared<PendingCommand>();
  cmd->request = request;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_requested_) {
      return ErrorReply("unavailable", "service is stopped");
    }
    if (queue_.size() >= static_cast<std::size_t>(options_.queue_capacity)) {
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      JsonValue reply = ErrorReply("overloaded", "command queue full");
      reply.Set("retry_after_ms", JsonValue::MakeNumber(options_.retry_after_ms));
      return reply;
    }
    queue_.push_back(cmd);
    queue_peak_ = std::max(queue_peak_, queue_.size());
  }
  cv_.notify_all();
  driver_->Interrupt();

  std::unique_lock<std::mutex> lock(cmd->mu);
  cmd->cv.wait(lock, [&] { return cmd->done; });
  return cmd->reply;
}

std::string SchedulerService::ExecuteText(const std::string& request_text) {
  const StatusOr<JsonValue> parsed =
      JsonValue::Parse(request_text, JsonParseLimits::Untrusted());
  if (!parsed.ok()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument", "bad request: " + parsed.status().message())
        .Dump();
  }
  if (!parsed.value().is_object()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument", "request must be a JSON object").Dump();
  }
  return Execute(parsed.value()).Dump();
}

void SchedulerService::Reply(PendingCommand& cmd, JsonValue reply) {
  {
    std::lock_guard<std::mutex> lock(cmd.mu);
    cmd.reply = std::move(reply);
    cmd.done = true;
  }
  cmd.cv.notify_all();
}

SchedulerService::NextAction SchedulerService::Next(
    std::shared_ptr<PendingCommand>* cmd) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!queue_.empty()) {
      *cmd = queue_.front();
      queue_.pop_front();
      return NextAction::kApply;
    }
    if (stop_requested_) {
      return NextAction::kStop;
    }
    Simulator& sim = *engine_.sim;
    if (driver_->realtime()) {
      if (sim.HasUnfinishedJobs() && std::isfinite(sim.NextEventTime())) {
        return NextAction::kWaitRealTime;
      }
    } else if (options_.auto_advance && !auto_quiescent_ &&
               sim.HasUnfinishedJobs()) {
      return NextAction::kStep;
    }
    cv_.wait(lock);
  }
}

void SchedulerService::EngineLoop() {
  for (;;) {
    std::shared_ptr<PendingCommand> cmd;
    switch (Next(&cmd)) {
      case NextAction::kApply:
        Reply(*cmd, Apply(cmd->request));
        break;
      case NextAction::kStep: {
        // Free-run toward quiescence in bounded chunks so a newly queued
        // command waits at most one chunk.
        const bool more = engine_.sim->StepUntil(kInfinity, kAutoStepChunk);
        driver_->AdvanceTo(engine_.sim->now());
        if (!more) {
          auto_quiescent_ = true;
        }
        break;
      }
      case NextAction::kWaitRealTime: {
        // Sleep (interruptibly) until the wall clock reaches the next
        // event, then catch the engine up to the driver's time.
        if (driver_->WaitUntil(engine_.sim->NextEventTime())) {
          engine_.sim->StepUntil(driver_->Now());
        }
        break;
      }
      case NextAction::kStop:
        return;
    }
  }
}

TimeSec SchedulerService::StampFor(const JsonValue& request) const {
  const double at = request.GetDouble("at", -1.0);
  const double base = at >= 0.0 ? at : driver_->Now();
  return std::max(base, engine_.sim->now());
}

void SchedulerService::TraceCommand(const char* name, TimeSec stamp) {
  obs::TraceExporter* trace = engine_.sim->mutable_trace_exporter();
  if (trace != nullptr) {
    char args[48];
    std::snprintf(args, sizeof(args), "\"log_seq\": %zu", log_.size());
    trace->Instant(obs::TraceTrack::kService, name, stamp, args);
  }
}

JsonValue SchedulerService::Apply(const JsonValue& request) {
  commands_applied_.fetch_add(1, std::memory_order_relaxed);
  const std::string cmd = request.GetString("cmd");
  if (cmd == "submit") {
    return ApplySubmit(request);
  }
  if (cmd == "cancel") {
    return ApplyCancel(request);
  }
  if (cmd == "advance") {
    return ApplyAdvance(request);
  }
  if (cmd == "drain") {
    return ApplyDrain();
  }
  if (cmd == "query_job") {
    return ApplyQueryJob(request);
  }
  if (cmd == "cluster_stats") {
    return ApplyClusterStats();
  }
  if (cmd == "metrics") {
    return ApplyMetrics();
  }
  if (cmd == "snapshot") {
    return ApplySnapshot(request);
  }
  if (cmd == "ping") {
    return ApplyPing();
  }
  if (cmd == "shutdown") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_requested_ = true;
    }
    stopped_.store(true, std::memory_order_release);
    cv_.notify_all();
    JsonValue reply = OkReply();
    reply.Set("stopping", JsonValue::MakeBool(true));
    return reply;
  }
  command_errors_.fetch_add(1, std::memory_order_relaxed);
  return ErrorReply("invalid_argument", "unknown cmd: \"" + cmd + "\"");
}

JsonValue SchedulerService::ApplySubmit(const JsonValue& request) {
  JobSpec spec;
  spec.gpus_per_worker = static_cast<int>(request.GetDouble("gpus_per_worker", 1));
  spec.min_workers = static_cast<int>(request.GetDouble("min_workers", 1));
  spec.max_workers = static_cast<int>(
      request.GetDouble("max_workers", static_cast<double>(spec.min_workers)));
  spec.requested_workers =
      static_cast<int>(request.GetDouble("requested_workers", 0));
  spec.fungible = request.GetBool("fungible");
  spec.heterogeneous = request.GetBool("heterogeneous");
  spec.checkpointing = request.GetBool("checkpointing");
  spec.total_work = request.GetDouble("total_work", 0.0);
  const std::string model = request.GetString("model", "other");
  if (!ModelFamilyFromName(model, &spec.model)) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument", "unknown model family: " + model);
  }

  const TimeSec stamp = StampFor(request);
  spec.submit_time = stamp;
  engine_.sim->StepUntil(stamp);
  const StatusOr<JobId> id = engine_.sim->SubmitJob(spec);
  if (!id.ok()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return StatusReply(id.status());
  }
  LoggedCommand logged;
  logged.kind = CommandKind::kSubmit;
  logged.stamp = stamp;
  logged.spec = spec;
  TraceCommand("submit", stamp);
  log_.push_back(std::move(logged));
  jobs_submitted_.fetch_add(1, std::memory_order_relaxed);
  auto_quiescent_ = false;

  JsonValue reply = OkReply();
  reply.Set("job", JsonValue::MakeNumber(static_cast<double>(id.value().value)));
  reply.Set("time", JsonValue::MakeNumber(stamp));
  return reply;
}

JsonValue SchedulerService::ApplyCancel(const JsonValue& request) {
  const JsonValue* job = request.Find("job");
  if (job == nullptr || !job->is_number()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument", "cancel requires a numeric \"job\"");
  }
  const std::int64_t id = job->AsInt();
  const TimeSec stamp = StampFor(request);
  engine_.sim->StepUntil(stamp);
  const Status status = engine_.sim->CancelJob(JobId(id));
  if (!status.ok()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return StatusReply(status);
  }
  LoggedCommand logged;
  logged.kind = CommandKind::kCancel;
  logged.stamp = stamp;
  logged.job = id;
  TraceCommand("cancel", stamp);
  log_.push_back(std::move(logged));
  jobs_cancelled_.fetch_add(1, std::memory_order_relaxed);
  auto_quiescent_ = false;

  JsonValue reply = OkReply();
  reply.Set("job", JsonValue::MakeNumber(static_cast<double>(id)));
  reply.Set("time", JsonValue::MakeNumber(engine_.sim->now()));
  return reply;
}

JsonValue SchedulerService::ApplyAdvance(const JsonValue& request) {
  const double to = request.GetDouble("to", -1.0);
  if (to < 0.0 || !std::isfinite(to)) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument",
                      "advance requires a finite non-negative \"to\"");
  }
  const TimeSec stamp = std::max(to, engine_.sim->now());
  engine_.sim->StepUntil(stamp);
  driver_->AdvanceTo(stamp);
  LoggedCommand logged;
  logged.kind = CommandKind::kAdvance;
  logged.stamp = stamp;
  TraceCommand("advance", stamp);
  log_.push_back(std::move(logged));
  auto_quiescent_ = false;

  JsonValue reply = OkReply();
  reply.Set("time", JsonValue::MakeNumber(engine_.sim->now()));
  reply.Set("virtual_time", JsonValue::MakeNumber(stamp));
  return reply;
}

JsonValue SchedulerService::ApplyDrain() {
  engine_.sim->StepUntil(kInfinity);
  driver_->AdvanceTo(engine_.sim->now());
  LoggedCommand logged;
  logged.kind = CommandKind::kDrain;
  logged.stamp = engine_.sim->now();
  TraceCommand("drain", logged.stamp);
  log_.push_back(std::move(logged));
  auto_quiescent_ = true;

  std::size_t finished = 0;
  for (const auto& job : engine_.sim->jobs()) {
    if (job->state() == JobState::kFinished ||
        job->state() == JobState::kCancelled) {
      ++finished;
    }
  }
  JsonValue reply = OkReply();
  reply.Set("time", JsonValue::MakeNumber(engine_.sim->now()));
  reply.Set("jobs", JsonValue::MakeNumber(
                        static_cast<double>(engine_.sim->jobs().size())));
  reply.Set("terminal", JsonValue::MakeNumber(static_cast<double>(finished)));
  return reply;
}

JsonValue SchedulerService::ApplyQueryJob(const JsonValue& request) const {
  const JsonValue* job_field = request.Find("job");
  if (job_field == nullptr || !job_field->is_number()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument", "query_job requires a numeric \"job\"");
  }
  const std::int64_t id = job_field->AsInt();
  const auto& jobs = engine_.sim->jobs();
  if (id < 0 || static_cast<std::size_t>(id) >= jobs.size()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("not_found", "no such job: " + std::to_string(id));
  }
  const Job& job = *jobs[static_cast<std::size_t>(id)];
  JsonValue reply = OkReply();
  reply.Set("job", JsonValue::MakeNumber(static_cast<double>(id)));
  reply.Set("state", JsonValue::MakeString(JobStateName(job.state())));
  reply.Set("submit_time", JsonValue::MakeNumber(job.spec().submit_time));
  reply.Set("gpus_per_worker", JsonValue::MakeNumber(job.spec().gpus_per_worker));
  reply.Set("min_workers", JsonValue::MakeNumber(job.spec().min_workers));
  reply.Set("max_workers", JsonValue::MakeNumber(job.spec().max_workers));
  reply.Set("workers", JsonValue::MakeNumber(job.current_workers()));
  reply.Set("work_remaining", JsonValue::MakeNumber(job.work_remaining()));
  reply.Set("preemptions", JsonValue::MakeNumber(job.preemptions()));
  reply.Set("scaling_operations", JsonValue::MakeNumber(job.scaling_operations()));
  if (job.first_start_time() >= 0.0) {
    reply.Set("first_start_time", JsonValue::MakeNumber(job.first_start_time()));
  }
  if (job.finish_time() >= 0.0) {
    reply.Set("finish_time", JsonValue::MakeNumber(job.finish_time()));
  }
  return reply;
}

JsonValue SchedulerService::ApplyClusterStats() const {
  const Simulator& sim = *engine_.sim;
  std::size_t pending = 0;
  std::size_t running = 0;
  std::size_t finished = 0;
  std::size_t cancelled = 0;
  for (const auto& job : sim.jobs()) {
    switch (job->state()) {
      case JobState::kPending:
        ++pending;
        break;
      case JobState::kRunning:
        ++running;
        break;
      case JobState::kFinished:
        ++finished;
        break;
      case JobState::kCancelled:
        ++cancelled;
        break;
    }
  }
  JsonValue jobs = JsonValue::MakeObject();
  jobs.Set("total", JsonValue::MakeNumber(static_cast<double>(sim.jobs().size())));
  jobs.Set("pending", JsonValue::MakeNumber(static_cast<double>(pending)));
  jobs.Set("running", JsonValue::MakeNumber(static_cast<double>(running)));
  jobs.Set("finished", JsonValue::MakeNumber(static_cast<double>(finished)));
  jobs.Set("cancelled", JsonValue::MakeNumber(static_cast<double>(cancelled)));

  JsonValue pools = JsonValue::MakeObject();
  pools.Set("training", PoolStats(sim.cluster(), ServerPool::kTraining));
  pools.Set("on_loan", PoolStats(sim.cluster(), ServerPool::kOnLoan));
  pools.Set("inference", PoolStats(sim.cluster(), ServerPool::kInference));

  JsonValue reply = OkReply();
  reply.Set("time", JsonValue::MakeNumber(sim.now()));
  reply.Set("events_processed",
            JsonValue::MakeNumber(static_cast<double>(sim.events_processed())));
  reply.Set("jobs", std::move(jobs));
  reply.Set("cluster", std::move(pools));
  return reply;
}

JsonValue SchedulerService::ApplyMetrics() const {
  JsonValue reply = OkReply();
  reply.Set("time", JsonValue::MakeNumber(engine_.sim->now()));
  // The engine's registry already exports JSON; re-parse so the reply is one
  // coherent document (Dump/Parse round-trips are exact).
  const StatusOr<JsonValue> engine_metrics =
      JsonValue::Parse(engine_.sim->metrics().ExportJson());
  reply.Set("engine",
            engine_metrics.ok() ? engine_metrics.value() : JsonValue::MakeNull());

  const Stats stats = this->stats();
  JsonValue service = JsonValue::MakeObject();
  service.Set("commands_applied", JsonValue::MakeNumber(
                                      static_cast<double>(stats.commands_applied)));
  service.Set("jobs_submitted",
              JsonValue::MakeNumber(static_cast<double>(stats.jobs_submitted)));
  service.Set("jobs_cancelled",
              JsonValue::MakeNumber(static_cast<double>(stats.jobs_cancelled)));
  service.Set("rejected_overload",
              JsonValue::MakeNumber(static_cast<double>(stats.rejected_overload)));
  service.Set("command_errors",
              JsonValue::MakeNumber(static_cast<double>(stats.command_errors)));
  service.Set("queue_depth",
              JsonValue::MakeNumber(static_cast<double>(stats.queue_depth)));
  service.Set("queue_peak",
              JsonValue::MakeNumber(static_cast<double>(stats.queue_peak)));
  service.Set("command_log", JsonValue::MakeNumber(static_cast<double>(log_.size())));
  service.Set("driver", JsonValue::MakeString(driver_->name()));
  reply.Set("service", std::move(service));
  return reply;
}

JsonValue SchedulerService::ApplySnapshot(const JsonValue& request) {
  const std::string path = request.GetString("path");
  if (path.empty()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument", "snapshot requires a \"path\"");
  }
  ServiceSnapshot snapshot;
  snapshot.config = options_.engine;
  snapshot.commands = log_;
  snapshot.horizon = engine_.sim->now();
  const Status saved = SaveSnapshot(snapshot, path);
  if (!saved.ok()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return StatusReply(saved);
  }
  TraceCommand("snapshot", snapshot.horizon);
  JsonValue reply = OkReply();
  reply.Set("path", JsonValue::MakeString(path));
  reply.Set("commands", JsonValue::MakeNumber(static_cast<double>(log_.size())));
  reply.Set("time", JsonValue::MakeNumber(snapshot.horizon));
  return reply;
}

JsonValue SchedulerService::ApplyPing() const {
  JsonValue reply = OkReply();
  reply.Set("time", JsonValue::MakeNumber(engine_.sim->now()));
  reply.Set("virtual_time", JsonValue::MakeNumber(driver_->Now()));
  reply.Set("driver", JsonValue::MakeString(driver_->name()));
  return reply;
}

}  // namespace lyra::svc
