#include "src/svc/service.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "src/common/check.h"
#include "src/obs/trace_exporter.h"
#include "src/svc/prom.h"
#include "src/svc/replies.h"

namespace lyra::svc {
namespace {

// Events the engine processes per auto-advance chunk before re-checking the
// command queue; bounds command latency while the engine free-runs.
constexpr std::uint64_t kAutoStepChunk = 4096;

constexpr double kInfinity = std::numeric_limits<double>::infinity();

bool ModelFamilyFromName(const std::string& name, ModelFamily* family) {
  for (ModelFamily candidate :
       {ModelFamily::kResNet, ModelFamily::kVgg, ModelFamily::kBert,
        ModelFamily::kGnmt, ModelFamily::kOther}) {
    if (name == ModelFamilyName(candidate)) {
      *family = candidate;
      return true;
    }
  }
  // Lowercase shorthands for hand-typed commands.
  if (name == "resnet") {
    *family = ModelFamily::kResNet;
  } else if (name == "vgg") {
    *family = ModelFamily::kVgg;
  } else if (name == "bert") {
    *family = ModelFamily::kBert;
  } else if (name == "gnmt") {
    *family = ModelFamily::kGnmt;
  } else if (name == "other" || name.empty()) {
    *family = ModelFamily::kOther;
  } else {
    return false;
  }
  return true;
}

}  // namespace

SchedulerService::CmdClass SchedulerService::Classify(const std::string& cmd) {
  if (cmd == "query_job" || cmd == "cluster_stats" || cmd == "metrics" ||
      cmd == "ping" || cmd == "stats_prom" || cmd == "trace_dump" ||
      cmd == "federation_stats") {
    return CmdClass::kRead;
  }
  if (cmd == "submit" || cmd == "cancel" || cmd == "advance" || cmd == "drain" ||
      cmd == "snapshot" || cmd == "shutdown" || cmd == "migrate") {
    return CmdClass::kEngine;
  }
  return CmdClass::kUnknown;
}

SchedulerService::CmdClass SchedulerService::Classify(TelemetryCmd cmd) {
  switch (cmd) {
    case TelemetryCmd::kSubmit:
    case TelemetryCmd::kCancel:
    case TelemetryCmd::kAdvance:
    case TelemetryCmd::kDrain:
    case TelemetryCmd::kSnapshot:
    case TelemetryCmd::kShutdown:
    case TelemetryCmd::kMigrate:
      return CmdClass::kEngine;
    case TelemetryCmd::kQueryJob:
    case TelemetryCmd::kClusterStats:
    case TelemetryCmd::kMetrics:
    case TelemetryCmd::kPing:
    case TelemetryCmd::kStatsProm:
    case TelemetryCmd::kTraceDump:
    case TelemetryCmd::kFederationStats:
      return CmdClass::kRead;
    case TelemetryCmd::kOther:
    case TelemetryCmd::kBatchApply:
    case TelemetryCmd::kSnapshotPublish:
      break;
  }
  return CmdClass::kUnknown;
}

SchedulerService::SchedulerService(ServiceOptions options,
                                   std::unique_ptr<TimeDriver> driver)
    : options_(std::move(options)), driver_(std::move(driver)) {
  LYRA_CHECK(driver_ != nullptr);
  LYRA_CHECK_GT(options_.queue_capacity, 0);
}

SchedulerService::~SchedulerService() { Stop(); }

Status SchedulerService::Start() {
  StatusOr<Engine> built = BuildEngine(options_.engine, options_.trace_path);
  if (!built.ok()) {
    return built.status();
  }
  engine_ = std::move(built.value());
  engine_.sim->Begin();
  engine_.sim->set_job_dirty_sink(builder_.sink());
  snapshot_.store(builder_.Publish(*engine_.sim, log_.size(), true),
                  std::memory_order_release);
  last_metrics_refresh_ = std::chrono::steady_clock::now();
  engine_shard_ = telemetry_.AcquireShard("engine");
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    snapshots_published_ = 1;
  }
  engine_thread_ = std::thread(&SchedulerService::EngineLoop, this);
  return Status::Ok();
}

Status SchedulerService::Restore(const std::string& snapshot_path) {
  StatusOr<ServiceSnapshot> loaded = LoadSnapshot(snapshot_path);
  if (!loaded.ok()) {
    return loaded.status();
  }
  return RestoreSnapshot(std::move(loaded).value());
}

Status SchedulerService::RestoreBytes(const std::string& image,
                                      const std::string& origin) {
  StatusOr<ServiceSnapshot> decoded = DecodeSnapshot(image, origin);
  if (!decoded.ok()) {
    return decoded.status();
  }
  return RestoreSnapshot(std::move(decoded).value());
}

Status SchedulerService::RestoreSnapshot(ServiceSnapshot snapshot) {
  options_.engine = snapshot.config;
  StatusOr<Engine> built = BuildEngine(options_.engine, options_.trace_path);
  if (!built.ok()) {
    return built.status();
  }
  engine_ = std::move(built.value());
  engine_.sim->Begin();
  // Replay: the exact discipline the live service used — step to the stamp,
  // re-apply. Event sequencing is a pure function of this command list, so
  // the rebuilt engine's decision log matches the original's byte-for-byte.
  for (const LoggedCommand& cmd : snapshot.commands) {
    const Status replayed = ReplayCommand(cmd);
    if (!replayed.ok()) {
      return replayed;
    }
  }
  engine_.sim->StepUntil(snapshot.horizon);
  driver_->AdvanceTo(engine_.sim->now());
  log_ = std::move(snapshot.commands);
  engine_.sim->set_job_dirty_sink(builder_.sink());
  snapshot_.store(builder_.Publish(*engine_.sim, log_.size(), true),
                  std::memory_order_release);
  last_metrics_refresh_ = std::chrono::steady_clock::now();
  engine_shard_ = telemetry_.AcquireShard("engine");
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    snapshots_published_ = 1;
  }
  engine_thread_ = std::thread(&SchedulerService::EngineLoop, this);
  return Status::Ok();
}

Status SchedulerService::ReplayCommand(const LoggedCommand& cmd) {
  Simulator& sim = *engine_.sim;
  switch (cmd.kind) {
    case CommandKind::kSubmit: {
      sim.StepUntil(cmd.stamp);
      const StatusOr<JobId> id = sim.SubmitJob(cmd.spec);
      if (!id.ok()) {
        return Status::DataLoss("snapshot replay: submit failed: " +
                                id.status().message());
      }
      return Status::Ok();
    }
    case CommandKind::kCancel: {
      sim.StepUntil(cmd.stamp);
      const Status status = sim.CancelJob(JobId(cmd.job));
      if (!status.ok()) {
        return Status::DataLoss("snapshot replay: cancel failed: " +
                                status.message());
      }
      return Status::Ok();
    }
    case CommandKind::kAdvance:
      sim.StepUntil(cmd.stamp);
      return Status::Ok();
    case CommandKind::kDrain:
      sim.StepUntil(kInfinity);
      return Status::Ok();
  }
  return Status::DataLoss("snapshot replay: unknown command kind");
}

void SchedulerService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      stopped_.store(true, std::memory_order_release);
      return;
    }
    stop_requested_ = true;
  }
  stopped_.store(true, std::memory_order_release);
  cv_.notify_all();
  driver_->Interrupt();
  if (engine_thread_.joinable()) {
    engine_thread_.join();
  }
  if (engine_.sim != nullptr && !finalized_) {
    finalized_ = true;
    engine_.sim->Finalize();  // closes meters, writes the trace file
  }
}

SchedulerService::Stats SchedulerService::stats() const {
  Stats stats;
  stats.command_errors = command_errors_.load(std::memory_order_relaxed);
  stats.reads_served = reads_served_.load(std::memory_order_relaxed);
  // One lock for the queue-coupled counters: a reader never observes a batch
  // counted as applied while queue_depth still includes it, or a queue_peak
  // below a previously returned queue_depth.
  std::lock_guard<std::mutex> lock(mu_);
  stats.commands_applied = commands_applied_;
  stats.jobs_submitted = jobs_submitted_;
  stats.jobs_cancelled = jobs_cancelled_;
  stats.rejected_overload =
      rejected_overload_ + rejected_shed_.load(std::memory_order_relaxed);
  stats.snapshots_published = snapshots_published_;
  stats.queue_depth = queue_.size();
  stats.queue_peak = queue_peak_;
  return stats;
}

JsonValue SchedulerService::Execute(const JsonValue& request) {
  if (Classify(request.GetString("cmd")) != CmdClass::kEngine) {
    return ReadReply(request);
  }
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    JsonValue reply;
  };
  auto waiter = std::make_shared<Waiter>();
  ExecuteAsync(request, [waiter](JsonValue reply) {
    {
      std::lock_guard<std::mutex> lock(waiter->mu);
      waiter->reply = std::move(reply);
      waiter->done = true;
    }
    waiter->cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(waiter->mu);
  waiter->cv.wait(lock, [&] { return waiter->done; });
  return std::move(waiter->reply);
}

std::string SchedulerService::ExecuteText(const std::string& request_text) {
  const StatusOr<JsonValue> parsed =
      JsonValue::Parse(request_text, JsonParseLimits::Untrusted());
  if (!parsed.ok()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument", "bad request: " + parsed.status().message())
        .Dump();
  }
  if (!parsed.value().is_object()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument", "request must be a JSON object").Dump();
  }
  return Execute(parsed.value()).Dump();
}

void SchedulerService::ExecuteAsync(JsonValue request, Completion done) {
  const CmdClass cls = Classify(request.GetString("cmd"));
  ExecuteAsync(std::move(request), std::move(done), cls);
}

void SchedulerService::ExecuteAsync(JsonValue request, Completion done,
                                    CmdClass cls) {
  if (cls != CmdClass::kEngine) {
    done(ReadReply(request));
    return;
  }
  PendingCommand cmd;
  cmd.request = std::move(request);
  cmd.done = std::move(done);
  EnqueueEngine(std::move(cmd));
}

void SchedulerService::ExecuteAsync(JsonValue request,
                                    std::shared_ptr<CompletionSink> sink,
                                    std::uint64_t a, std::uint64_t b,
                                    CmdClass cls) {
  if (cls != CmdClass::kEngine) {
    sink->OnReply(a, b, ReadReply(request));
    return;
  }
  PendingCommand cmd;
  cmd.request = std::move(request);
  cmd.sink = std::move(sink);
  cmd.sink_a = a;
  cmd.sink_b = b;
  EnqueueEngine(std::move(cmd));
}

void SchedulerService::Deliver(PendingCommand& cmd, JsonValue reply) {
  if (cmd.sink != nullptr) {
    cmd.sink->OnReply(cmd.sink_a, cmd.sink_b, std::move(reply));
  } else {
    cmd.done(std::move(reply));
  }
}

void SchedulerService::EnqueueEngine(PendingCommand cmd) {
  JsonValue rejection;
  bool rejected = false;
  bool was_empty = false;
  if (stopped()) {
    rejection = ErrorReply("unavailable", "service is stopped");
    rejected = true;
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_requested_) {
      rejection = ErrorReply("unavailable", "service is stopped");
      rejected = true;
    } else if (queue_.size() >= static_cast<std::size_t>(options_.queue_capacity)) {
      ++rejected_overload_;
      rejection = ErrorReply("overloaded", "command queue full");
      rejection.Set("retry_after_ms", JsonValue::MakeNumber(options_.retry_after_ms));
      rejected = true;
    } else {
      was_empty = queue_.empty();
      queue_.push_back(std::move(cmd));
      queue_len_.store(queue_.size(), std::memory_order_relaxed);
      queue_peak_ = std::max(queue_peak_, queue_.size());
    }
  }
  if (rejected) {
    EchoSeq(cmd.request, rejection);
    Deliver(cmd, std::move(rejection));
    return;
  }
  // Only the push that makes the queue non-empty can find the engine asleep:
  // the engine drains the whole queue under the lock, so while it holds
  // earlier commands it is awake and will pick ours up in its next drain.
  // Pipelined bursts thus pay one wakeup, not one per command.
  if (was_empty) {
    cv_.notify_one();
    driver_->Interrupt();
  }
}

JsonValue SchedulerService::ReadReply(const JsonValue& request) const {
  const std::string cmd = request.GetString("cmd");
  JsonValue reply;
  if (Classify(cmd) == CmdClass::kUnknown) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    reply = ErrorReply("invalid_argument", "unknown cmd: \"" + cmd + "\"");
    EchoSeq(request, reply);
    return reply;
  }
  const std::shared_ptr<const StateSnapshot> snap = snapshot();
  if (snap == nullptr || stopped()) {
    reply = ErrorReply("unavailable", "service is stopped");
    EchoSeq(request, reply);
    return reply;
  }
  if (cmd == "query_job") {
    const JsonValue* job_field = request.Find("job");
    if (job_field == nullptr || !job_field->is_number()) {
      command_errors_.fetch_add(1, std::memory_order_relaxed);
      reply = ErrorReply("invalid_argument", "query_job requires a numeric \"job\"");
    } else {
      reply = SnapshotJobReply(*snap, job_field->AsInt());
      if (!reply.GetBool("ok", false)) {
        command_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } else if (cmd == "cluster_stats") {
    reply = SnapshotClusterStatsReply(*snap);
  } else if (cmd == "metrics") {
    reply = OkReply();
    reply.Set("time", JsonValue::MakeNumber(snap->time));
    reply.Set("engine", snap->engine_metrics != nullptr ? *snap->engine_metrics
                                                        : JsonValue::MakeNull());
    const Stats stats = this->stats();
    JsonValue service = JsonValue::MakeObject();
    service.Set("commands_applied", JsonValue::MakeNumber(
                                        static_cast<double>(stats.commands_applied)));
    service.Set("jobs_submitted",
                JsonValue::MakeNumber(static_cast<double>(stats.jobs_submitted)));
    service.Set("jobs_cancelled",
                JsonValue::MakeNumber(static_cast<double>(stats.jobs_cancelled)));
    service.Set("rejected_overload",
                JsonValue::MakeNumber(static_cast<double>(stats.rejected_overload)));
    service.Set("command_errors",
                JsonValue::MakeNumber(static_cast<double>(stats.command_errors)));
    service.Set("reads_served",
                JsonValue::MakeNumber(static_cast<double>(stats.reads_served)));
    service.Set("snapshots_published",
                JsonValue::MakeNumber(
                    static_cast<double>(stats.snapshots_published)));
    service.Set("queue_depth",
                JsonValue::MakeNumber(static_cast<double>(stats.queue_depth)));
    service.Set("queue_peak",
                JsonValue::MakeNumber(static_cast<double>(stats.queue_peak)));
    service.Set("command_log", JsonValue::MakeNumber(
                                   static_cast<double>(snap->command_log_size)));
    service.Set("driver", JsonValue::MakeString(driver_->name()));
    reply.Set("service", std::move(service));
    reply.Set("metrics_time", JsonValue::MakeNumber(snap->metrics_time));
  } else if (cmd == "stats_prom") {
    // Unix-socket counterpart of `GET /metrics`: the full exposition
    // document as a reply field, for clients without an HTTP path.
    reply = OkReply();
    reply.Set("text", JsonValue::MakeString(RenderPrometheus(*this)));
  } else if (cmd == "federation_stats") {
    // Classified as a read so the federation front end can intercept it; a
    // plain engine has no clusters or broker to report on.
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    reply = ErrorReply("failed_precondition", "not a federation");
  } else if (cmd == "trace_dump") {
    const std::string path = request.GetString("path");
    if (path.empty()) {
      command_errors_.fetch_add(1, std::memory_order_relaxed);
      reply = ErrorReply("invalid_argument", "trace_dump requires a \"path\"");
    } else {
      const StatusOr<std::size_t> dumped = DumpFlightRecorder(path);
      if (!dumped.ok()) {
        command_errors_.fetch_add(1, std::memory_order_relaxed);
        reply = StatusReply(dumped.status());
      } else {
        reply = OkReply();
        reply.Set("path", JsonValue::MakeString(path));
        reply.Set("spans", JsonValue::MakeNumber(
                               static_cast<double>(dumped.value())));
      }
    }
  } else {  // ping
    // Liveness + identity probe: enough to tell which engine answered and
    // how far it has gotten, without the cost of a metrics export.
    reply = OkReply();
    reply.Set("time", JsonValue::MakeNumber(snap->time));
    reply.Set("virtual_time", JsonValue::MakeNumber(driver_->Now()));
    reply.Set("driver", JsonValue::MakeString(driver_->name()));
    reply.Set("uptime_s", JsonValue::MakeNumber(UptimeSeconds()));
    std::uint64_t applied = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      applied = commands_applied_;
    }
    reply.Set("commands_applied",
              JsonValue::MakeNumber(static_cast<double>(applied)));
    reply.Set("snapshot_seq",
              JsonValue::MakeNumber(static_cast<double>(snap->version)));
    reply.Set("scheduler", JsonValue::MakeString(options_.engine.scheduler));
    reply.Set("reclaim", JsonValue::MakeString(options_.engine.reclaim));
  }
  reads_served_.fetch_add(1, std::memory_order_relaxed);
  EchoSeq(request, reply);
  return reply;
}

SchedulerService::NextAction SchedulerService::Next(
    std::vector<PendingCommand>* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!queue_.empty()) {
      // Drain the whole queue in one lock hold: pipelined clients pay one
      // mutex round and one snapshot publish per batch, not per command.
      batch->reserve(queue_.size());
      for (PendingCommand& cmd : queue_) {
        batch->push_back(std::move(cmd));
      }
      queue_.clear();
      queue_len_.store(0, std::memory_order_relaxed);
      return NextAction::kApply;
    }
    if (stop_requested_) {
      return NextAction::kStop;
    }
    Simulator& sim = *engine_.sim;
    if (driver_->realtime()) {
      if (sim.HasUnfinishedJobs() && std::isfinite(sim.NextEventTime())) {
        return NextAction::kWaitRealTime;
      }
    } else if (options_.auto_advance && !auto_quiescent_ &&
               sim.HasUnfinishedJobs()) {
      return NextAction::kStep;
    }
    cv_.wait(lock);
  }
}

void SchedulerService::PublishSnapshot(bool force_metrics) {
  const auto wall = std::chrono::steady_clock::now();
  bool refresh = force_metrics;
  if (!refresh &&
      std::chrono::duration<double, std::milli>(wall - last_metrics_refresh_)
              .count() >= options_.metrics_refresh_ms) {
    refresh = true;
  }
  if (refresh) {
    last_metrics_refresh_ = wall;
  }
  const std::uint64_t publish_start =
      engine_shard_ != nullptr ? TelemetryNowNs() : 0;
  snapshot_.store(builder_.Publish(*engine_.sim, log_.size(), refresh),
                  std::memory_order_release);
  if (engine_shard_ != nullptr) {
    engine_shard_->engine_snapshot_publish.Record(TelemetryNowNs() -
                                                  publish_start);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++snapshots_published_;
}

void SchedulerService::EngineLoop() {
  std::vector<PendingCommand> batch;
  std::vector<JsonValue> replies;
  for (;;) {
    batch.clear();
    switch (Next(&batch)) {
      case NextAction::kApply: {
        const std::uint64_t apply_start = TelemetryNowNs();
        replies.clear();
        replies.reserve(batch.size());
        for (const PendingCommand& cmd : batch) {
          replies.push_back(Apply(cmd.request));
          EchoSeq(cmd.request, replies.back());
        }
        if (engine_shard_ != nullptr) {
          const std::uint64_t apply_end = TelemetryNowNs();
          engine_shard_->engine_batch_apply.Record(apply_end - apply_start);
          engine_shard_->engine_batch_commands.Record(batch.size());
          engine_shard_->spans.Record(
              apply_start, apply_end - apply_start, log_.size(), batch.size(),
              static_cast<std::uint32_t>(
                  queue_len_.load(std::memory_order_relaxed)),
              TelemetryCmd::kBatchApply);
        }
        // Publish before delivering replies: a client that saw its write
        // acknowledged reads a snapshot at or past that write.
        PublishSnapshot(false);
        {
          std::lock_guard<std::mutex> lock(mu_);
          commands_applied_ += batch_applied_;
          jobs_submitted_ += batch_submitted_;
          jobs_cancelled_ += batch_cancelled_;
        }
        batch_applied_ = 0;
        batch_submitted_ = 0;
        batch_cancelled_ = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          Deliver(batch[i], std::move(replies[i]));
        }
        break;
      }
      case NextAction::kStep: {
        // Free-run toward quiescence in bounded chunks so a newly queued
        // command waits at most one chunk.
        const bool more = engine_.sim->StepUntil(kInfinity, kAutoStepChunk);
        driver_->AdvanceTo(engine_.sim->now());
        if (!more) {
          auto_quiescent_ = true;
        }
        PublishSnapshot(false);
        break;
      }
      case NextAction::kWaitRealTime: {
        // Sleep (interruptibly) until the wall clock reaches the next
        // event, then catch the engine up to the driver's time.
        if (driver_->WaitUntil(engine_.sim->NextEventTime())) {
          engine_.sim->StepUntil(driver_->Now());
          PublishSnapshot(false);
        }
        break;
      }
      case NextAction::kStop:
        return;
    }
  }
}

TimeSec SchedulerService::StampFor(const JsonValue& request) const {
  const double at = request.GetDouble("at", -1.0);
  const double base = at >= 0.0 ? at : driver_->Now();
  return std::max(base, engine_.sim->now());
}

void SchedulerService::TraceCommand(const char* name, TimeSec stamp) {
  obs::TraceExporter* trace = engine_.sim->mutable_trace_exporter();
  if (trace != nullptr) {
    char args[48];
    std::snprintf(args, sizeof(args), "\"log_seq\": %zu", log_.size());
    trace->Instant(obs::TraceTrack::kService, name, stamp, args);
  }
}

JsonValue SchedulerService::Apply(const JsonValue& request) {
  ++batch_applied_;
  const std::string cmd = request.GetString("cmd");
  if (cmd == "submit") {
    return ApplySubmit(request);
  }
  if (cmd == "cancel") {
    return ApplyCancel(request);
  }
  if (cmd == "advance") {
    return ApplyAdvance(request);
  }
  if (cmd == "drain") {
    return ApplyDrain();
  }
  if (cmd == "snapshot") {
    return ApplySnapshot(request);
  }
  if (cmd == "shutdown") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_requested_ = true;
    }
    stopped_.store(true, std::memory_order_release);
    cv_.notify_all();
    JsonValue reply = OkReply();
    reply.Set("stopping", JsonValue::MakeBool(true));
    return reply;
  }
  command_errors_.fetch_add(1, std::memory_order_relaxed);
  return ErrorReply("invalid_argument", "unknown cmd: \"" + cmd + "\"");
}

JsonValue SchedulerService::ApplySubmit(const JsonValue& request) {
  // One walk over the request's members instead of a Find() scan per field:
  // submit dominates saturation traffic and the scans were measurable there.
  JobSpec spec;
  spec.gpus_per_worker = 1;
  spec.min_workers = 1;
  spec.max_workers = 0;  // defaults to min_workers when absent
  bool have_max_workers = false;
  const JsonValue* model_field = nullptr;
  unsigned seen = 0;  // first occurrence wins, matching Find()'s semantics
  const auto first = [&seen](int bit) {
    if ((seen & (1u << bit)) != 0) {
      return false;
    }
    seen |= 1u << bit;
    return true;
  };
  const auto num = [](const JsonValue& v, double fb) {
    return v.is_number() ? v.AsDouble() : fb;
  };
  for (const auto& [key, value] : request.AsObject()) {
    if (key == "gpus_per_worker") {
      if (first(0)) spec.gpus_per_worker = static_cast<int>(num(value, 1));
    } else if (key == "min_workers") {
      if (first(1)) spec.min_workers = static_cast<int>(num(value, 1));
    } else if (key == "max_workers") {
      if (first(2) && value.is_number()) {
        spec.max_workers = static_cast<int>(value.AsDouble());
        have_max_workers = true;
      }
    } else if (key == "requested_workers") {
      if (first(3)) spec.requested_workers = static_cast<int>(num(value, 0));
    } else if (key == "fungible") {
      if (first(4)) spec.fungible = value.is_bool() && value.AsBool();
    } else if (key == "heterogeneous") {
      if (first(5)) spec.heterogeneous = value.is_bool() && value.AsBool();
    } else if (key == "checkpointing") {
      if (first(6)) spec.checkpointing = value.is_bool() && value.AsBool();
    } else if (key == "total_work") {
      if (first(7)) spec.total_work = num(value, 0.0);
    } else if (key == "model") {
      if (first(8)) model_field = &value;
    }
  }
  if (!have_max_workers) {
    spec.max_workers = spec.min_workers;
  }
  const std::string model =
      model_field != nullptr && model_field->is_string() ? model_field->AsString()
                                                         : "other";
  if (!ModelFamilyFromName(model, &spec.model)) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument", "unknown model family: " + model);
  }

  const TimeSec stamp = StampFor(request);
  spec.submit_time = stamp;
  engine_.sim->StepUntil(stamp);
  const StatusOr<JobId> id = engine_.sim->SubmitJob(spec);
  if (!id.ok()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return StatusReply(id.status());
  }
  LoggedCommand logged;
  logged.kind = CommandKind::kSubmit;
  logged.stamp = stamp;
  logged.spec = spec;
  TraceCommand("submit", stamp);
  log_.push_back(std::move(logged));
  ++batch_submitted_;
  auto_quiescent_ = false;

  JsonValue reply = OkReply();
  reply.Set("job", JsonValue::MakeNumber(static_cast<double>(id.value().value)));
  reply.Set("time", JsonValue::MakeNumber(stamp));
  return reply;
}

JsonValue SchedulerService::ApplyCancel(const JsonValue& request) {
  const JsonValue* job = request.Find("job");
  if (job == nullptr || !job->is_number()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument", "cancel requires a numeric \"job\"");
  }
  const std::int64_t id = job->AsInt();
  const TimeSec stamp = StampFor(request);
  engine_.sim->StepUntil(stamp);
  const Status status = engine_.sim->CancelJob(JobId(id));
  if (!status.ok()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return StatusReply(status);
  }
  LoggedCommand logged;
  logged.kind = CommandKind::kCancel;
  logged.stamp = stamp;
  logged.job = id;
  TraceCommand("cancel", stamp);
  log_.push_back(std::move(logged));
  ++batch_cancelled_;
  auto_quiescent_ = false;

  JsonValue reply = OkReply();
  reply.Set("job", JsonValue::MakeNumber(static_cast<double>(id)));
  reply.Set("time", JsonValue::MakeNumber(engine_.sim->now()));
  return reply;
}

JsonValue SchedulerService::ApplyAdvance(const JsonValue& request) {
  const double to = request.GetDouble("to", -1.0);
  if (to < 0.0 || !std::isfinite(to)) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument",
                      "advance requires a finite non-negative \"to\"");
  }
  const TimeSec stamp = std::max(to, engine_.sim->now());
  engine_.sim->StepUntil(stamp);
  driver_->AdvanceTo(stamp);
  LoggedCommand logged;
  logged.kind = CommandKind::kAdvance;
  logged.stamp = stamp;
  TraceCommand("advance", stamp);
  log_.push_back(std::move(logged));
  auto_quiescent_ = false;

  JsonValue reply = OkReply();
  reply.Set("time", JsonValue::MakeNumber(engine_.sim->now()));
  reply.Set("virtual_time", JsonValue::MakeNumber(stamp));
  return reply;
}

JsonValue SchedulerService::ApplyDrain() {
  engine_.sim->StepUntil(kInfinity);
  driver_->AdvanceTo(engine_.sim->now());
  LoggedCommand logged;
  logged.kind = CommandKind::kDrain;
  logged.stamp = engine_.sim->now();
  TraceCommand("drain", logged.stamp);
  log_.push_back(std::move(logged));
  auto_quiescent_ = true;

  std::size_t finished = 0;
  for (const auto& job : engine_.sim->jobs()) {
    if (job->state() == JobState::kFinished ||
        job->state() == JobState::kCancelled) {
      ++finished;
    }
  }
  JsonValue reply = OkReply();
  reply.Set("time", JsonValue::MakeNumber(engine_.sim->now()));
  reply.Set("jobs", JsonValue::MakeNumber(
                        static_cast<double>(engine_.sim->jobs().size())));
  reply.Set("terminal", JsonValue::MakeNumber(static_cast<double>(finished)));
  return reply;
}

StatusOr<std::size_t> SchedulerService::DumpFlightRecorder(
    const std::string& path) const {
  const std::vector<RequestSpan> spans = telemetry_.CollectSpans();
  obs::TraceExporter exporter(std::max<std::size_t>(spans.size() + 16, 1024));
  const std::uint64_t epoch = telemetry_.epoch_ns();
  for (const RequestSpan& span : spans) {
    // Stamps are wall time since the telemetry epoch; a clamped start keeps
    // a torn ring slot from producing a negative timestamp.
    const double start_s =
        span.start_ns >= epoch
            ? static_cast<double>(span.start_ns - epoch) * 1e-9
            : 0.0;
    const double dur_s = static_cast<double>(span.dur_ns) * 1e-9;
    char args[128];
    std::snprintf(args, sizeof(args),
                  "\"conn\": %" PRIu64 ", \"seq\": %" PRIu64
                  ", \"queue_depth\": %u, \"shard\": %u",
                  span.conn, span.seq, span.queue_depth,
                  static_cast<unsigned>(span.shard));
    exporter.Complete(obs::TraceTrack::kService, TelemetryCmdName(span.cmd),
                      start_s, start_s + dur_s, args);
  }
  const Status written = exporter.WriteJson(path);
  if (!written.ok()) {
    return written;
  }
  return spans.size();
}

JsonValue SchedulerService::ApplySnapshot(const JsonValue& request) {
  const std::string path = request.GetString("path");
  if (path.empty()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply("invalid_argument", "snapshot requires a \"path\"");
  }
  ServiceSnapshot snapshot;
  snapshot.config = options_.engine;
  snapshot.commands = log_;
  snapshot.horizon = engine_.sim->now();
  const Status saved = SaveSnapshot(snapshot, path);
  if (!saved.ok()) {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
    return StatusReply(saved);
  }
  TraceCommand("snapshot", snapshot.horizon);
  JsonValue reply = OkReply();
  reply.Set("path", JsonValue::MakeString(path));
  reply.Set("commands", JsonValue::MakeNumber(static_cast<double>(log_.size())));
  reply.Set("time", JsonValue::MakeNumber(snapshot.horizon));
  return reply;
}

}  // namespace lyra::svc
