#include "src/svc/time_driver.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace lyra::svc {

TimeSec VirtualTimeDriver::Now() {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

bool VirtualTimeDriver::WaitUntil(TimeSec target) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ = std::max(now_, target);
  return true;
}

void VirtualTimeDriver::AdvanceTo(TimeSec t) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ = std::max(now_, t);
}

ScaledRealTimeDriver::ScaledRealTimeDriver(double speedup)
    : speedup_(speedup), epoch_(std::chrono::steady_clock::now()) {
  LYRA_CHECK_GT(speedup_, 0.0);
}

TimeSec ScaledRealTimeDriver::Now() {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count() * speedup_;
}

std::chrono::steady_clock::time_point ScaledRealTimeDriver::WallFor(
    TimeSec virtual_time) const {
  return epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(virtual_time / speedup_));
}

bool ScaledRealTimeDriver::WaitUntil(TimeSec target) {
  std::unique_lock<std::mutex> lock(mu_);
  if (wake_pending_) {
    wake_pending_ = false;
    return false;
  }
  if (!std::isfinite(target)) {
    // No event horizon: sleep until a command interrupts us.
    cv_.wait(lock, [&] { return wake_pending_; });
    wake_pending_ = false;
    return false;
  }
  const auto deadline = WallFor(target);
  while (!wake_pending_) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout ||
        std::chrono::steady_clock::now() >= deadline) {
      return true;
    }
  }
  wake_pending_ = false;
  return false;  // interrupted: a command arrived
}

void ScaledRealTimeDriver::Interrupt() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    wake_pending_ = true;
  }
  cv_.notify_all();
}

}  // namespace lyra::svc
