// Multi-cluster federation for the online scheduler service (DESIGN.md §11).
//
// Lyra loans capacity from one inference cluster to one training cluster;
// Aryl (PAPERS.md) generalizes the pattern to a fleet. A FederationRouter
// runs N inference + M training clusters — each cluster its own group of
// single-writer SchedulerService engines, reusing the ShardRouter's
// engine-pool plumbing — behind the one epoll front end:
//
//   - Submits route by explicit "cluster" field (name or index) or by job
//     kind ("kind": "inference" | "training", default training); within the
//     chosen engine set the key hash / submit counter picks the engine with
//     the same FNV-1a discipline engine sharding uses, so routing stays a
//     pure function of (cluster, key | sequence).
//   - Global job ids keep PR 8's arithmetic over the *flat* engine pool
//     (G = L * E + e); the engine index e now carries the cluster dimension,
//     since each cluster owns a contiguous engine range. At E == 1 the
//     scheme degrades to the plain service's raw ids, and every reply byte
//     matches an unsharded SchedulerService run (conformance-tested).
//   - A LoanBroker matches training demand (pending jobs) against inference
//     clusters' idle capacity under per-cluster loan priorities, reclaims
//     loans when an inference cluster's free pool dips into its reserve
//     (load spike), and returns loans the borrower no longer needs. The
//     broker evaluates at advance/drain barriers — barrier merges are
//     strictly serialized by the fanout countdown, so the decision trace is
//     deterministic and golden-diffable.
//   - `migrate` moves a job between training clusters for defragmentation:
//     cancel on the source engine, resubmit on the destination with the
//     remaining work plus a checkpoint cost (cheap when the job
//     checkpoints, expensive when it must recompute).
//   - `snapshot` gathers per-engine images into per-cluster LYRASHRD
//     containers nested in one LYRAFED file together with the broker ledger
//     and routing counter; a warm restart rebuilds every cluster
//     byte-identically and resumes loans mid-flight.
#ifndef SRC_SVC_FEDERATION_H_
#define SRC_SVC_FEDERATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/predict/predictor.h"
#include "src/svc/shard_router.h"
#include "src/svc/snapshot.h"

namespace lyra::svc {

enum class ClusterKind : std::uint8_t { kInference = 0, kTraining = 1 };

const char* ClusterKindName(ClusterKind kind);

struct ClusterSpec {
  std::string name;  // [A-Za-z0-9_.-]+, unique within the federation
  ClusterKind kind = ClusterKind::kTraining;
  int shards = 1;         // engines in this cluster
  int loan_priority = 0;  // higher lends/borrows first (ties: cluster index)
};

// Parses a `--federation=` spec:
//   "NxM"      N inference + M training clusters, one engine each
//   "NxM@S"    same, S engine shards per cluster
//   "name:kind[:shards[:prio]],..."  explicit comma-separated list
//             (kind: "inference"/"inf" or "training"/"train")
// Default names are inf0..infN-1 / train0..trainM-1.
StatusOr<std::vector<ClusterSpec>> ParseFederationSpec(const std::string& spec);

// Checkpoint cost charged to a migrated job, in GPU-seconds of extra work:
// a checkpointing job resumes from its last checkpoint; a non-checkpointing
// job pays the cold restart (Lyra §4: checkpoint/restore vs recompute).
inline constexpr double kMigrationCheckpointCost = 60.0;
inline constexpr double kMigrationColdCost = 300.0;

// The cross-cluster loan ledger and its policy. NOT thread-safe: the
// FederationRouter serializes access (barrier merges + migration
// completions) behind one mutex. Every decision appends a formatted event
// line and folds it into a rolling FNV-1a `ledger_hash` — the byte-identity
// witness for golden-trace and warm-restart tests.
class LoanBroker {
 public:
  // Fraction of an inference cluster's GPUs never lent out; dipping below
  // the reserve is the "load spike" that triggers reclaims.
  static constexpr double kReserveFraction = 0.1;
  // Event lines retained for federation_stats (the hash covers all).
  static constexpr std::size_t kMaxEvents = 256;
  // Pending-demand normalization for the optional loan predictor: predictors
  // model usage in [0, 1], so pending jobs are observed as pending / scale
  // and predictions are mapped back with ceil(prediction * scale).
  static constexpr double kDemandScale = 1024.0;

  // One cluster's broker-relevant state at a barrier.
  struct ClusterSignal {
    ClusterKind kind = ClusterKind::kTraining;
    int loan_priority = 0;
    std::int64_t total_gpus = 0;    // inference pool capacity (lenders)
    std::int64_t free_gpus = 0;     // inference pool idle (lenders)
    std::int64_t pending_jobs = 0;  // training demand (borrowers)
  };

  // One evaluation round at time `now`, deterministic in (ledger, signals):
  //   1. return: a borrower whose demand dropped returns newest loans that
  //      are entirely surplus (no flapping on partially-needed loans);
  //   2. reclaim: a lender whose free pool (net of what it has pledged)
  //      dipped below its reserve pulls back its newest loans (LIFO) until
  //      the reserve is whole again;
  //   3. grant: remaining training demand is matched against lendable
  //      inference capacity (free - reserve - outstanding), borrowers and
  //      lenders each in descending loan priority (ties by cluster index).
  void Evaluate(double now, const std::vector<ClusterSignal>& signals);

  // Post-restore reconciliation: drops loans whose endpoints fall outside
  // [0, clusters) — a crash mid-reshape can persist a loan against a
  // cluster that no longer exists. Emits a "drop" event per casualty.
  void Reconcile(double now, std::size_t clusters);

  // Sizes loan grants from a per-borrower UsagePredictor instead of the raw
  // pending-job count (`--loan-predictor`): every Evaluate observes each
  // training cluster's normalized pending demand and the grant phase uses
  // ceil(PredictNext() * kDemandScale) as that cluster's demand. `name` is a
  // registry predictor name ("seasonal-naive" | "lstm" | "last-value"); an
  // empty name switches the feature off. When off (the default) Evaluate is
  // byte-identical to the unpredicted broker — same events, same ledger
  // hash. InvalidArgument on an unknown name.
  Status ConfigurePredictor(const std::string& name);
  const std::string& predictor_name() const { return predictor_name_; }

  // Ledger entry for a completed job migration (the router performs the
  // cancel/resubmit chain; the broker only records it).
  void RecordMigration(double now, std::int64_t from_job, std::int64_t to_job,
                       std::uint32_t from_cluster, std::uint32_t to_cluster,
                       double checkpoint_cost);

  // Outstanding GPUs lent by / borrowed by a cluster.
  std::int64_t LoanedBy(std::uint32_t cluster) const;
  std::int64_t BorrowedBy(std::uint32_t cluster) const;

  const FedLedger& ledger() const { return ledger_; }
  void RestoreLedger(const FedLedger& ledger) { ledger_ = ledger; }
  std::uint64_t ledger_hash() const { return ledger_.ledger_hash; }
  const std::vector<std::string>& events() const { return events_; }

 private:
  void Emit(const std::string& event);
  void Grant(double now, std::uint32_t lender, std::uint32_t borrower,
             std::int64_t gpus);
  // Removes loans_[index], emitting `verb` ("reclaim" / "return" / "drop").
  void EndLoan(double now, const char* verb, std::size_t index);
  // Observes `pending` into cluster's predictor and returns the predicted
  // demand in jobs; the raw `pending` when no predictor is configured.
  std::int64_t PredictedDemand(std::uint32_t cluster, std::int64_t pending);

  FedLedger ledger_;
  std::vector<std::string> events_;
  std::string predictor_name_;
  // Lazily grown, indexed by borrower cluster; each training cluster gets
  // its own predictor so one cluster's history never leaks into another's.
  std::vector<std::unique_ptr<UsagePredictor>> predictors_;
};

// The federation front end: a ShardRouter over the flat engine pool whose
// routing, barriers, reads, and snapshots are cluster-aware. Drop-in for
// the EventLoop (which only sees the ShardRouter interface).
class FederationRouter : public ShardRouter {
 public:
  // `engines` is the flat pool; clusters own contiguous ranges in spec
  // order (sum of spec shards must equal engines.size()).
  FederationRouter(std::vector<SchedulerService*> engines,
                   std::vector<ClusterSpec> clusters);

  int cluster_count() const { return static_cast<int>(clusters_.size()); }
  const ClusterSpec& cluster_spec(int c) const {
    return clusters_[static_cast<std::size_t>(c)];
  }
  int cluster_first_engine(int c) const {
    return first_engine_[static_cast<std::size_t>(c)];
  }
  std::uint32_t ClusterOfEngine(std::uint32_t engine) const {
    return engine_cluster_[engine];
  }
  int FindCluster(const std::string& name) const;  // -1 when unknown

  // Thread-safe pass-through to LoanBroker::ConfigurePredictor.
  Status ConfigureLoanPredictor(const std::string& name);

  // Thread-safe copies of the broker state (tools, tests, stats).
  FedLedger LedgerCopy() const;
  std::vector<std::string> RecentEvents() const;
  void RestoreLedger(const FedLedger& ledger);
  // Post-restore loan reconciliation at the engines' current frontier.
  void ReconcileBroker();

  Plan RouteEngine(TelemetryCmd cmd, const JsonValue& request) const override;
  std::uint32_t BeginEngine(TelemetryCmd cmd, JsonValue& request,
                            const Plan& plan) override;
  void DispatchEngine(const Plan& plan, std::uint32_t shard, JsonValue request,
                      std::shared_ptr<SchedulerService::CompletionSink> sink,
                      std::uint64_t a, std::uint64_t b) override;
  JsonValue ReadReply(const JsonValue& request) const override;
  std::string RenderPromText() const override;

 protected:
  JsonValue MergeFanout(TelemetryCmd cmd, const JsonValue& request,
                        const std::string& snapshot_path,
                        std::uint64_t snapshot_submit_seq,
                        std::vector<JsonValue>& replies) const override;

 private:
  class MigrationSink;

  // Candidate engines for a submit: the explicit cluster's range, or every
  // engine of the requested kind. nullptr when the target doesn't resolve.
  const std::vector<std::uint32_t>* TargetEngines(
      const JsonValue& request) const;
  JsonValue RejectReply(TelemetryCmd cmd, const JsonValue& request) const;
  void StartMigration(JsonValue request,
                      std::shared_ptr<SchedulerService::CompletionSink> sink,
                      std::uint64_t a, std::uint64_t b);
  JsonValue FederationStats(const JsonValue& request) const;
  // Per-cluster stats object (jobs by state, pools, loan balance) shared by
  // federation_stats and the cluster_stats read augmentation.
  JsonValue ClusterInfo(int c, const FedLedger& ledger) const;
  JsonValue MergeFederationSnapshot(const JsonValue& request,
                                    const std::string& snapshot_path,
                                    std::uint64_t snapshot_submit_seq,
                                    std::vector<JsonValue>& replies) const;
  LoanBroker::ClusterSignal SignalFor(int c) const;
  std::vector<LoanBroker::ClusterSignal> CollectSignals() const;
  double MaxEngineTime() const;

  std::vector<ClusterSpec> clusters_;
  std::vector<int> first_engine_;                        // per cluster
  std::vector<std::uint32_t> engine_cluster_;            // per engine
  std::vector<std::vector<std::uint32_t>> cluster_engines_;  // per cluster
  std::vector<std::uint32_t> kind_engines_[2];           // per ClusterKind
  // Guards the broker: barrier merges run serialized on engine threads, but
  // migration completions land on arbitrary engine threads concurrently.
  mutable std::mutex broker_mu_;
  mutable LoanBroker broker_;
};

// A federation fleet plus its router, built together — the federation
// counterpart of ShardSet.
struct FederationSet {
  std::vector<std::unique_ptr<SchedulerService>> services;
  std::unique_ptr<FederationRouter> router;
};

// Builds and Start()s one engine per (cluster, shard), flat engine index k
// getting seed base.engine.seed + k (the engine-shard discipline, so a
// one-engine federation is the unsharded service exactly) and trace_path
// + ".fed<k>" for k > 0 when tracing.
StatusOr<FederationSet> BuildFederation(
    const ServiceOptions& base, const std::vector<ClusterSpec>& clusters,
    const std::function<std::unique_ptr<TimeDriver>(int)>& make_driver);

// Restores a federation from a LYRAFED container: cluster layout, per-engine
// images, routing counter, and broker ledger all come from the file;
// runtime knobs come from `base`. Loans are reconciled after the restore.
StatusOr<FederationSet> RestoreFederation(
    const ServiceOptions& base, const std::string& snapshot_path,
    const std::function<std::unique_ptr<TimeDriver>(int)>& make_driver);

// True when `path` starts with the LYRAFED magic (daemon restore sniffing).
bool IsFedSnapshotFile(const std::string& path);

}  // namespace lyra::svc

#endif  // SRC_SVC_FEDERATION_H_
