// Epoll front end for the scheduler service (DESIGN.md §8).
//
// Replaces the thread-per-connection socket server with a small fixed pool
// of I/O threads, each running its own epoll loop over nonblocking
// connections. Listeners — a Unix socket, a TCP socket, or both — are polled
// by thread 0; accepted connections are handed to the pool round-robin and
// stay pinned to one thread for life, so per-connection state is never
// shared between threads.
//
// Each connection keeps an incremental frame decoder on the read side and an
// ordered slot queue on the write side. Clients may pipeline frames freely:
//   - engine commands (submit/cancel/...) are forwarded to
//     SchedulerService::ExecuteAsync and their slot completes when the
//     engine's batch reply arrives;
//   - read-only commands are answered inline from the service's state
//     snapshot — they never touch the engine queue — unless an earlier
//     engine command on the same connection is still in flight, in which
//     case the read is deferred until that command completes (preserving
//     read-your-writes and strict per-connection reply order);
//   - malformed frames complete immediately with an error reply.
// Completed replies are flushed as a batch with one sendmsg(2) of
// [len][payload][len][payload]... iovecs (MSG_NOSIGNAL; a dead peer is an
// EPIPE, never a SIGPIPE), spilling unsent bytes to a per-connection buffer
// when the socket would block.
#ifndef SRC_SVC_EVENT_LOOP_H_
#define SRC_SVC_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace lyra::svc {

class SchedulerService;
class ShardRouter;

struct EventLoopOptions {
  // Unix socket path to listen on; empty disables the Unix listener.
  std::string unix_path;
  // IPv4 address + port for the TCP listener; port < 0 disables it, port 0
  // binds an ephemeral port (see EventLoop::tcp_port()).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  // Fixed I/O thread pool size.
  int io_threads = 2;
  int backlog = 128;
  // A connection whose peer stops reading accumulates at most this many
  // unsent bytes before it is dropped.
  std::size_t max_outbuf_bytes = 64u << 20;
  // Requests slower than this (decode -> reply queued) are logged at WARNING
  // through the leveled logger; 0 disables the slow-request log.
  double slow_ms = 0.0;
};

class EventLoop {
 public:
  // `service` must outlive the loop. Wraps the service in an owned one-shard
  // router; every frame behaves exactly as before sharding existed.
  EventLoop(SchedulerService* service, EventLoopOptions options);
  // Sharded front end: frames route through `router` (which must outlive the
  // loop). I/O-thread telemetry and protocol-error counts home on
  // router->front().
  EventLoop(ShardRouter* router, EventLoopOptions options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Binds the configured listeners and starts the I/O threads.
  Status Start();

  // Drains pending completions, flushes what the sockets will take without
  // blocking, closes every connection, and joins the pool. Idempotent.
  void Stop();

  const std::string& unix_path() const { return options_.unix_path; }
  // The bound TCP port after Start() (resolves port 0), or -1 when the TCP
  // listener is disabled.
  int tcp_port() const { return tcp_port_; }

 private:
  class IoThread;
  friend class IoThread;

  // Wraps the single-service ctor's argument so both ctors meet at router_.
  std::unique_ptr<ShardRouter> owned_router_;
  ShardRouter* router_;
  EventLoopOptions options_;
  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int tcp_port_ = -1;
  std::vector<std::unique_ptr<IoThread>> threads_;
  std::atomic<std::size_t> next_thread_{0};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace lyra::svc

#endif  // SRC_SVC_EVENT_LOOP_H_
