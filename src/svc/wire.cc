#include "src/svc/wire.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace lyra::svc {
namespace {

std::uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<std::uint32_t>(u[0]) << 24) |
         (static_cast<std::uint32_t>(u[1]) << 16) |
         (static_cast<std::uint32_t>(u[2]) << 8) | static_cast<std::uint32_t>(u[3]);
}

// Reads exactly `size` bytes. Returns the byte count read before EOF (so the
// caller can distinguish a clean close from a truncated frame).
StatusOr<std::size_t> ReadFull(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Unavailable(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      return got;
    }
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

void EncodeFrameHeader(std::uint32_t payload_size, char out[4]) {
  out[0] = static_cast<char>((payload_size >> 24) & 0xff);
  out[1] = static_cast<char>((payload_size >> 16) & 0xff);
  out[2] = static_cast<char>((payload_size >> 8) & 0xff);
  out[3] = static_cast<char>(payload_size & 0xff);
}

std::string EncodeFrame(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 4);
  AppendFrame(payload, out);
  return out;
}

void AppendFrame(const std::string& payload, std::string& out) {
  char header[4];
  EncodeFrameHeader(static_cast<std::uint32_t>(payload.size()), header);
  out.append(header, sizeof(header));
  out += payload;
}

Status WriteAllBytes(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    // send with MSG_NOSIGNAL, not write: a disconnected peer must surface as
    // EPIPE, not kill the daemon with SIGPIPE.
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds 1 MiB");
  }
  const std::string framed = EncodeFrame(payload);
  return WriteAllBytes(fd, framed.data(), framed.size());
}

StatusOr<std::string> ReadFrame(int fd) {
  char header[4];
  StatusOr<std::size_t> got = ReadFull(fd, header, sizeof(header));
  if (!got.ok()) {
    return got.status();
  }
  if (got.value() == 0) {
    return Status::Unavailable("eof");
  }
  if (got.value() < sizeof(header)) {
    return Status::DataLoss("connection closed mid-header");
  }
  const std::uint32_t length = GetU32(header);
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument("frame length " + std::to_string(length) +
                                   " exceeds 1 MiB cap");
  }
  std::string payload(length, '\0');
  got = ReadFull(fd, payload.data(), length);
  if (!got.ok()) {
    return got.status();
  }
  if (got.value() < length) {
    return Status::DataLoss("connection closed mid-frame");
  }
  return payload;
}

void FrameDecoder::Append(const char* data, std::size_t size) {
  // Compact once consumed bytes dominate, so the buffer stays bounded.
  if (consumed_ > 0 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

StatusOr<bool> FrameDecoder::Next(std::string* payload) {
  if (buffered() < 4) {
    return false;
  }
  const std::uint32_t length = GetU32(buffer_.data() + consumed_);
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument("frame length exceeds 1 MiB cap");
  }
  if (buffered() < 4 + static_cast<std::size_t>(length)) {
    return false;
  }
  payload->assign(buffer_, consumed_ + 4, length);
  consumed_ += 4 + length;
  return true;
}

StatusOr<int> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::Unavailable("bind " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    const Status status =
        Status::Unavailable("listen " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
}

StatusOr<int> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::Unavailable("connect " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
}

StatusOr<int> ListenTcp(const std::string& host, int port, int backlog,
                        int* bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::Unavailable(
        "bind " + host + ":" + std::to_string(port) + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    const Status status = Status::Unavailable(
        "listen " + host + ":" + std::to_string(port) + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      const Status status =
          Status::Unavailable(std::string("getsockname: ") + std::strerror(errno));
      ::close(fd);
      return status;
    }
    *bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  return fd;
}

StatusOr<int> ConnectTcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::Unavailable(
        "connect " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

StatusOr<int> ConnectEndpoint(const std::string& unix_path,
                              const std::string& tcp_host, int tcp_port) {
  return !unix_path.empty() ? ConnectUnix(unix_path)
                            : ConnectTcp(tcp_host, tcp_port);
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Unavailable(std::string("fcntl O_NONBLOCK: ") +
                               std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace lyra::svc
