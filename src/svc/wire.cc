#include "src/svc/wire.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace lyra::svc {
namespace {

void PutU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

std::uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<std::uint32_t>(u[0]) << 24) |
         (static_cast<std::uint32_t>(u[1]) << 16) |
         (static_cast<std::uint32_t>(u[2]) << 8) | static_cast<std::uint32_t>(u[3]);
}

Status WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Unavailable(std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

// Reads exactly `size` bytes. Returns the byte count read before EOF (so the
// caller can distinguish a clean close from a truncated frame).
StatusOr<std::size_t> ReadFull(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Unavailable(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      return got;
    }
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

std::string EncodeFrame(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 4);
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  return out;
}

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds 1 MiB");
  }
  const std::string framed = EncodeFrame(payload);
  return WriteAll(fd, framed.data(), framed.size());
}

StatusOr<std::string> ReadFrame(int fd) {
  char header[4];
  StatusOr<std::size_t> got = ReadFull(fd, header, sizeof(header));
  if (!got.ok()) {
    return got.status();
  }
  if (got.value() == 0) {
    return Status::Unavailable("eof");
  }
  if (got.value() < sizeof(header)) {
    return Status::DataLoss("connection closed mid-header");
  }
  const std::uint32_t length = GetU32(header);
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument("frame length " + std::to_string(length) +
                                   " exceeds 1 MiB cap");
  }
  std::string payload(length, '\0');
  got = ReadFull(fd, payload.data(), length);
  if (!got.ok()) {
    return got.status();
  }
  if (got.value() < length) {
    return Status::DataLoss("connection closed mid-frame");
  }
  return payload;
}

void FrameDecoder::Append(const char* data, std::size_t size) {
  // Compact once consumed bytes dominate, so the buffer stays bounded.
  if (consumed_ > 0 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

StatusOr<bool> FrameDecoder::Next(std::string* payload) {
  if (buffered() < 4) {
    return false;
  }
  const std::uint32_t length = GetU32(buffer_.data() + consumed_);
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument("frame length exceeds 1 MiB cap");
  }
  if (buffered() < 4 + static_cast<std::size_t>(length)) {
    return false;
  }
  payload->assign(buffer_, consumed_ + 4, length);
  consumed_ += 4 + length;
  return true;
}

StatusOr<int> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::Unavailable("bind " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    const Status status =
        Status::Unavailable("listen " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
}

StatusOr<int> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::Unavailable("connect " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
}

}  // namespace lyra::svc
