// Unix-domain socket front end for SchedulerService.
//
// One accept thread hands connections to a bounded pool of worker threads
// through a bounded queue. Each worker owns one connection at a time and runs
// a strict request/reply loop: read a frame, SchedulerService::ExecuteText,
// write the reply, repeat until the peer closes. Backpressure is explicit at
// both layers: a full connection queue answers with one `overloaded` frame
// and closes; a full command queue inside the service answers per-request
// with `overloaded` + retry_after_ms (the worker never blocks behind the
// engine, because Execute itself never blocks on a full queue).
#ifndef SRC_SVC_SOCKET_SERVER_H_
#define SRC_SVC_SOCKET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/svc/service.h"

namespace lyra::svc {

struct SocketServerOptions {
  std::string path;       // Unix socket path (must fit sockaddr_un)
  int workers = 4;        // concurrent connections served
  int backlog = 128;      // listen(2) backlog
  int max_pending_connections = 64;  // beyond this: overloaded frame + close
};

class SocketServer {
 public:
  SocketServer(SocketServerOptions options, SchedulerService* service);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds, listens, and starts the accept + worker threads.
  Status Start();

  // Closes the listener, drains workers, unlinks the socket. Idempotent.
  void Stop();

  const std::string& path() const { return options_.path; }

  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  SocketServerOptions options_;
  SchedulerService* service_;  // not owned

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
  bool stopping_ = false;
  bool started_ = false;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
};

}  // namespace lyra::svc

#endif  // SRC_SVC_SOCKET_SERVER_H_
