#include "src/svc/state_snapshot.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/sim/simulator.h"
#include "src/svc/replies.h"

namespace lyra::svc {
namespace {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kRunning:
      return "running";
    case JobState::kFinished:
      return "finished";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

JobRecord RecordOf(const Job& job) {
  JobRecord record;
  record.spec = job.spec();
  record.state = job.state();
  record.current_workers = job.current_workers();
  record.work_remaining = job.work_remaining();
  record.preemptions = job.preemptions();
  record.scaling_operations = job.scaling_operations();
  record.first_start_time = job.first_start_time();
  record.finish_time = job.finish_time();
  return record;
}

PoolCounters CountersOf(const ClusterState& cluster, ServerPool pool) {
  PoolCounters counters;
  counters.servers = cluster.NumServersInPool(pool);
  counters.total_gpus = cluster.TotalGpus(pool);
  counters.used_gpus = cluster.UsedGpus(pool);
  counters.free_gpus = cluster.FreeGpus(pool);
  return counters;
}

JsonValue PoolJson(const PoolCounters& counters) {
  JsonValue stats = JsonValue::MakeObject();
  stats.Set("servers", JsonValue::MakeNumber(counters.servers));
  stats.Set("total_gpus", JsonValue::MakeNumber(counters.total_gpus));
  stats.Set("used_gpus", JsonValue::MakeNumber(counters.used_gpus));
  stats.Set("free_gpus", JsonValue::MakeNumber(counters.free_gpus));
  return stats;
}

}  // namespace

std::shared_ptr<const StateSnapshot> SnapshotBuilder::Publish(
    const Simulator& sim, std::size_t command_log_size, bool refresh_metrics) {
  const auto& jobs = sim.jobs();

  // Every mutated job — including every newly submitted one, which is armed
  // dirty at SubmitJob — latched its id into the sink exactly once.
  dirty_chunks_.clear();
  for (const std::int64_t id : sink_.ids) {
    dirty_chunks_.push_back(static_cast<std::size_t>(id) / kSnapshotChunkSize);
  }
  std::sort(dirty_chunks_.begin(), dirty_chunks_.end());
  dirty_chunks_.erase(std::unique(dirty_chunks_.begin(), dirty_chunks_.end()),
                      dirty_chunks_.end());

  const std::size_t wanted_chunks =
      (jobs.size() + kSnapshotChunkSize - 1) / kSnapshotChunkSize;
  chunks_.resize(wanted_chunks);

  for (const std::size_t c : dirty_chunks_) {
    LYRA_CHECK_LT(c, chunks_.size());
    const std::size_t base = c * kSnapshotChunkSize;
    const std::size_t count = std::min(kSnapshotChunkSize, jobs.size() - base);
    auto rebuilt = std::make_shared<JobChunk>();
    rebuilt->records.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      rebuilt->records.push_back(RecordOf(*jobs[base + i]));
      ++rebuilt->state_counts[static_cast<std::size_t>(
          rebuilt->records.back().state)];
    }
    if (chunks_[c] != nullptr) {
      for (std::size_t s = 0; s < 4; ++s) {
        state_counts_[s] -= chunks_[c]->state_counts[s];
      }
    }
    for (std::size_t s = 0; s < 4; ++s) {
      state_counts_[s] += rebuilt->state_counts[s];
    }
    chunks_[c] = std::move(rebuilt);
  }

  for (const std::int64_t id : sink_.ids) {
    jobs[static_cast<std::size_t>(id)]->ClearDirty();
  }
  sink_.ids.clear();

  if (refresh_metrics) {
    StatusOr<JsonValue> parsed = JsonValue::Parse(sim.metrics().ExportJson());
    engine_metrics_ = std::make_shared<const JsonValue>(
        parsed.ok() ? std::move(parsed.value()) : JsonValue::MakeNull());
    metrics_time_ = sim.now();
  }

  auto snapshot = std::make_shared<StateSnapshot>();
  snapshot->version = ++version_;
  snapshot->time = sim.now();
  snapshot->events_processed = sim.events_processed();
  snapshot->job_count = jobs.size();
  snapshot->command_log_size = command_log_size;
  snapshot->state_counts = state_counts_;
  snapshot->training = CountersOf(sim.cluster(), ServerPool::kTraining);
  snapshot->on_loan = CountersOf(sim.cluster(), ServerPool::kOnLoan);
  snapshot->inference = CountersOf(sim.cluster(), ServerPool::kInference);
  snapshot->chunks = chunks_;
  snapshot->engine_metrics = engine_metrics_;
  snapshot->metrics_time = metrics_time_;
  return snapshot;
}

JsonValue SnapshotJobReply(const StateSnapshot& snap, std::int64_t id) {
  const JobRecord* job = snap.FindJob(id);
  if (job == nullptr) {
    return ErrorReply("not_found", "no such job: " + std::to_string(id));
  }
  JsonValue reply = OkReply();
  reply.Set("job", JsonValue::MakeNumber(static_cast<double>(id)));
  reply.Set("state", JsonValue::MakeString(JobStateName(job->state)));
  reply.Set("submit_time", JsonValue::MakeNumber(job->spec.submit_time));
  reply.Set("gpus_per_worker", JsonValue::MakeNumber(job->spec.gpus_per_worker));
  reply.Set("min_workers", JsonValue::MakeNumber(job->spec.min_workers));
  reply.Set("max_workers", JsonValue::MakeNumber(job->spec.max_workers));
  reply.Set("workers", JsonValue::MakeNumber(job->current_workers));
  reply.Set("work_remaining", JsonValue::MakeNumber(job->work_remaining));
  reply.Set("preemptions", JsonValue::MakeNumber(job->preemptions));
  reply.Set("scaling_operations", JsonValue::MakeNumber(job->scaling_operations));
  if (job->first_start_time >= 0.0) {
    reply.Set("first_start_time", JsonValue::MakeNumber(job->first_start_time));
  }
  if (job->finish_time >= 0.0) {
    reply.Set("finish_time", JsonValue::MakeNumber(job->finish_time));
  }
  return reply;
}

JsonValue SnapshotClusterStatsReply(const StateSnapshot& snap) {
  JsonValue jobs = JsonValue::MakeObject();
  jobs.Set("total", JsonValue::MakeNumber(static_cast<double>(snap.job_count)));
  jobs.Set("pending",
           JsonValue::MakeNumber(static_cast<double>(
               snap.state_counts[static_cast<std::size_t>(JobState::kPending)])));
  jobs.Set("running",
           JsonValue::MakeNumber(static_cast<double>(
               snap.state_counts[static_cast<std::size_t>(JobState::kRunning)])));
  jobs.Set("finished",
           JsonValue::MakeNumber(static_cast<double>(
               snap.state_counts[static_cast<std::size_t>(JobState::kFinished)])));
  jobs.Set("cancelled",
           JsonValue::MakeNumber(static_cast<double>(
               snap.state_counts[static_cast<std::size_t>(JobState::kCancelled)])));

  JsonValue pools = JsonValue::MakeObject();
  pools.Set("training", PoolJson(snap.training));
  pools.Set("on_loan", PoolJson(snap.on_loan));
  pools.Set("inference", PoolJson(snap.inference));

  JsonValue reply = OkReply();
  reply.Set("time", JsonValue::MakeNumber(snap.time));
  reply.Set("events_processed",
            JsonValue::MakeNumber(static_cast<double>(snap.events_processed)));
  reply.Set("jobs", std::move(jobs));
  reply.Set("cluster", std::move(pools));
  return reply;
}

}  // namespace lyra::svc
