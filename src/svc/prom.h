// Prometheus text exposition (v0.0.4) for the service telemetry plane.
//
// RenderPrometheus is the server side: it merges the telemetry shards,
// service Stats, and the current StateSnapshot's engine gauges into one
// text document with conventional names (`lyra_svc_request_duration_seconds`
// et al), every family HELP'd and TYPE'd. It backs both the `GET /metrics`
// HTTP path sniffed off the TCP listener and the `stats_prom` wire command.
//
// ParsePrometheus/ExtractHistogram are the client side, shared by lyra_top,
// lyra_loadgen's server-scrape cross-check, and the exposition tests — the
// parser accepts exactly what the renderer emits (plus whitespace slack), so
// the round trip is tested end to end rather than against a third format.
#ifndef SRC_SVC_PROM_H_
#define SRC_SVC_PROM_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"

namespace lyra::svc {

class SchedulerService;
class ShardRouter;

// Renders the full exposition document. Callable from any thread (scrape
// cost lands entirely on the caller; writers are never touched beyond
// relaxed loads).
std::string RenderPrometheus(const SchedulerService& service);

// Sharded variant. One shard delegates to the service renderer byte-for-byte.
// With N > 1 every engine family carries per-shard samples labeled
// `shard="k"` plus an unlabeled merged total (histograms merged bucketwise,
// counters and gauges summed) emitted first, so single-series consumers that
// take the first match keep working unchanged; I/O-thread families come from
// the front shard's registry, where the event loop homes them. Adds a
// `lyra_svc_shards` gauge.
std::string RenderPrometheus(const ShardRouter& router);

struct PromSample {
  std::string name;  // full sample name, including _bucket/_sum/_count
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct PromScrape {
  std::vector<PromSample> samples;
  std::map<std::string, std::string> types;  // family name -> TYPE
  std::map<std::string, std::string> helps;  // family name -> HELP text

  // First sample with this exact name whose labels contain `labels` as a
  // subset; nullptr when absent.
  const PromSample* Find(const std::string& name,
                         const std::map<std::string, std::string>& labels = {})
      const;
  double Value(const std::string& name,
               const std::map<std::string, std::string>& labels = {},
               double fallback = 0.0) const;
};

// Parses an exposition document. InvalidArgument on malformed sample lines;
// unknown comment lines are ignored per the format spec.
StatusOr<PromScrape> ParsePrometheus(const std::string& text);

// Reassembles the `family` histogram (samples `family_bucket{le=...}`,
// `family_sum`, `family_count`) whose labels contain `labels` as a subset,
// converting cumulative buckets back to per-bucket counts. NotFound when the
// family has no buckets under those labels.
StatusOr<obs::Histogram> ExtractHistogram(
    const PromScrape& scrape, const std::string& family,
    const std::map<std::string, std::string>& labels = {});

}  // namespace lyra::svc

#endif  // SRC_SVC_PROM_H_
