// Engine sharding for the online scheduler service (DESIGN.md §10).
//
// `lyra_schedd --shards=N` runs N fully independent SchedulerService engines
// — each with its own Simulator, command queue, time driver, telemetry
// "engine" shard, and RCU StateSnapshot — behind the one epoll front end.
// ShardRouter is the thin routing layer the I/O threads call instead of a
// single service:
//
//   - submit / cancel / query_job go straight from the decoded frame to the
//     owning shard's ExecuteAsync (no hop thread, no extra queue). Ownership
//     is an FNV-1a hash: of the client's "key" string when present (stable
//     client affinity), of the router's monotone submit counter otherwise;
//     cancel and query_job hash nothing — the shard is encoded in the job id.
//   - Job ids returned to clients are global: G = local * N + shard, so
//     shard = G mod N and the id carries its own route. At N == 1 global and
//     local coincide and every reply byte matches the unsharded service.
//   - cluster_stats / metrics / ping / stats_prom merge the per-shard
//     snapshots and telemetry registries at read time, RCU-style, off the
//     engine threads.
//   - advance / drain / snapshot / shutdown fan out to every shard with a
//     completion barrier; `snapshot` additionally gathers the per-shard
//     LYRASNAP images into one LYRASHRD container (snapshot.h) together with
//     the submit counter, so a warm restart rebuilds every shard
//     byte-identically *and* keeps routing future keyless submits the way an
//     uninterrupted run would have.
//
// Dispatch is two-phase so the submit counter can never desynchronize from
// the shard a command actually ran on: RouteEngine is side-effect-free (the
// shed check peeks the counter), BeginEngine consumes it and returns the
// authoritative shard, and only then is the command enqueued. The caller
// must finish initializing its per-request state (the event loop's reply
// slot) between BeginEngine and DispatchEngine, because a saturated shard
// delivers its rejection inline, before DispatchEngine returns.
#ifndef SRC_SVC_SHARD_ROUTER_H_
#define SRC_SVC_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/svc/service.h"

namespace lyra::svc {

class ShardRouter {
 public:
  // The services must outlive the router. At least one shard.
  explicit ShardRouter(std::vector<SchedulerService*> shards);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;
  virtual ~ShardRouter() = default;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  SchedulerService* shard(int i) const { return shards_[static_cast<std::size_t>(i)]; }
  // Shard 0 doubles as the front end's home service: I/O-thread telemetry,
  // protocol-error counts, and identity fields all live there.
  SchedulerService* front() const { return shards_.front(); }

  // --- Job-id arithmetic -----------------------------------------------

  // Global ids interleave the shard index in the low bits: G = L * N + s.
  // N == 1 is the identity, so single-shard deployments keep the engine's
  // raw sequential ids on the wire.
  std::int64_t ToGlobal(std::int64_t local, std::uint32_t shard) const {
    return local * shard_count() + static_cast<std::int64_t>(shard);
  }
  std::int64_t ToLocal(std::int64_t global) const {
    return global / shard_count();
  }
  std::uint32_t ShardOfJob(std::int64_t global) const {
    const std::int64_t n = shard_count();
    return static_cast<std::uint32_t>(((global % n) + n) % n);
  }

  // --- Engine-command dispatch (two-phase) ------------------------------

  struct Plan {
    bool shed = false;         // target saturated: answer canned, enqueue nothing
    bool fanout = false;       // barrier command (advance/drain/snapshot/shutdown)
    bool rewrite_job = false;  // reply "job" needs the local->global rewrite
    bool reject = false;       // invalid target: DispatchEngine answers inline
    std::uint32_t shard = 0;   // advisory target (authoritative after Begin)
  };

  // Phase 1: pure routing decision, no side effects. For keyless submits the
  // counter is peeked, not consumed — a shed frame must not burn a sequence
  // number or replay-after-restore would route differently than the
  // uninterrupted run. Virtual so a FederationRouter (federation.h) can
  // layer cluster-aware routing over the same event loop.
  virtual Plan RouteEngine(TelemetryCmd cmd, const JsonValue& request) const;

  // Phase 2: consumes the submit counter where routing is counter-based and
  // rewrites the request's "job" from global to local in place (cancel).
  // Returns the authoritative shard (0 for fanout commands).
  virtual std::uint32_t BeginEngine(TelemetryCmd cmd, JsonValue& request,
                                    const Plan& plan);

  // Phase 3: enqueue. Single-shard commands go to shard `shard`'s
  // ExecuteAsync; fanout commands are copied to every shard behind a
  // barrier sink that merges the N replies and delivers once to `sink` with
  // (a, b). Inline rejections can invoke the sink before this returns.
  virtual void DispatchEngine(
      const Plan& plan, std::uint32_t shard, JsonValue request,
      std::shared_ptr<SchedulerService::CompletionSink> sink, std::uint64_t a,
      std::uint64_t b);

  // Reply-side id rewrite (local -> global) for replies from `shard`.
  // No-op when the reply has no numeric "job" (error replies) or N == 1.
  virtual void RewriteReplyJob(std::uint32_t shard, JsonValue& reply) const;

  // --- Reads ------------------------------------------------------------

  // Merged read-only answer. N == 1 delegates to the shard byte-for-byte;
  // otherwise query_job routes by id, cluster_stats/metrics/ping merge the
  // per-shard snapshots, stats_prom renders the merged exposition, and
  // trace_dump fans out per-shard trace files.
  virtual JsonValue ReadReply(const JsonValue& request) const;

  // The Prometheus exposition the /metrics endpoint and stats_prom serve.
  // A federation re-renders with cluster= labels and broker gauges.
  virtual std::string RenderPromText() const;

  // Synchronous convenience for tools and tests (mirrors
  // SchedulerService::Execute, including reply-id rewrites and barriers).
  JsonValue Execute(const JsonValue& request);

  // --- Front-end hints and aggregates -----------------------------------

  // True when any shard's queue is at capacity: the event loop gates reads
  // on this, deliberately conservative — with per-frame routing unknown at
  // gate time, one saturated shard stalls intake rather than letting its
  // frames pile up as rejections.
  bool AnySaturated() const;

  // Sum of the per-shard racy queue depths (telemetry annotations).
  std::size_t QueueDepthHint() const;

  // Per-shard stats summed (queue_peak is a max).
  SchedulerService::Stats AggregateStats() const;

  // Routing sequence for keyless submits; persisted in the LYRASHRD
  // container and restored by RestoreShardSet.
  std::uint64_t submit_seq() const {
    return submit_seq_.load(std::memory_order_relaxed);
  }
  void set_submit_seq(std::uint64_t seq) {
    submit_seq_.store(seq, std::memory_order_relaxed);
  }

  // FNV-1a over `data` (the routing hash; exposed for tests).
  static std::uint64_t Hash(const void* data, std::size_t size);

  // Per-shard scratch file a fanout snapshot writes before the merge gathers
  // the parts into the container ("<path>.part<k>").
  static std::string PartPath(const std::string& path, int shard);

 protected:
  class FanoutSink;
  class WaitSink;

  std::uint32_t ShardForKeylessSubmit(std::uint64_t seq) const;
  JsonValue MergedClusterStats(const JsonValue& request) const;
  JsonValue MergedMetrics(const JsonValue& request) const;
  JsonValue MergedPing(const JsonValue& request) const;
  JsonValue MergedStatsProm(const JsonValue& request) const;
  JsonValue MergedTraceDump(const JsonValue& request) const;
  JsonValue QueryJob(const JsonValue& request) const;

  // Merges the N fanout replies into the client's one (called by the last
  // shard to complete, on its engine thread). Barrier merges are strictly
  // sequential across fanout commands — the merging thread only delivers
  // the next barrier after finishing this one — so an override may fold in
  // ordered post-barrier work (the federation's loan broker).
  virtual JsonValue MergeFanout(TelemetryCmd cmd, const JsonValue& request,
                                const std::string& snapshot_path,
                                std::uint64_t snapshot_submit_seq,
                                std::vector<JsonValue>& replies) const;

  // Consumes one submit-routing sequence number (BeginEngine's counter
  // discipline, exposed for subclasses that route within a cluster's range).
  std::uint64_t NextSubmitSeq() {
    return submit_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<SchedulerService*> shards_;
  std::atomic<std::uint64_t> submit_seq_{0};
};

// A shard fleet plus its router, built together: the common construction
// path for lyra_schedd, the saturation bench, and tests.
struct ShardSet {
  std::vector<std::unique_ptr<SchedulerService>> services;
  std::unique_ptr<ShardRouter> router;
};

// Builds and Start()s `shards` engines from `base`. Each shard gets
// base.engine.seed + shard (independent fault/workload streams) and its own
// driver from `make_driver(shard)`. Shard 0 keeps base.trace_path; other
// shards get trace_path + ".shard<k>" when non-empty.
StatusOr<ShardSet> BuildShardSet(
    const ServiceOptions& base, int shards,
    const std::function<std::unique_ptr<TimeDriver>(int)>& make_driver);

// Restores a fleet from a snapshot file — plain LYRASNAP (one shard) or a
// LYRASHRD container (the file decides the shard count). Runtime knobs come
// from `base`; each shard's EngineConfig comes from its persisted image.
StatusOr<ShardSet> RestoreShardSet(
    const ServiceOptions& base, const std::string& snapshot_path,
    const std::function<std::unique_ptr<TimeDriver>(int)>& make_driver);

}  // namespace lyra::svc

#endif  // SRC_SVC_SHARD_ROUTER_H_
