// Immutable read snapshots of the scheduler engine (DESIGN.md §8).
//
// The engine thread is the single writer of the Simulator; read-only
// commands (query_job, cluster_stats, metrics, ping) must scale with cores
// instead of serializing through the engine's command queue. After every
// applied command batch (and every auto-advance chunk) the engine publishes a
// StateSnapshot via an atomic shared_ptr swap; reader threads load the
// pointer, answer from the immutable structure, and drop it — RCU-style, no
// locks on the read path, old snapshots retire when the last reader releases
// them.
//
// Publication is O(changed jobs), not O(jobs): job records live in fixed-size
// copy-on-write chunks shared between consecutive snapshots, and the
// simulator reports which jobs mutated since the last publish through a
// Job::DirtySink. Only chunks containing dirtied jobs are rebuilt; per-chunk
// state counts make the aggregate job-state counters an O(dirty chunks)
// incremental update.
#ifndef SRC_SVC_STATE_SNAPSHOT_H_
#define SRC_SVC_STATE_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/json.h"
#include "src/common/types.h"
#include "src/workload/job.h"

namespace lyra {
class Simulator;
}

namespace lyra::svc {

// Jobs per copy-on-write chunk. Power of two; small enough that rebuilding
// the chunks a batch touched stays cheap, large enough that a million-job
// snapshot is ~4k shared_ptrs.
inline constexpr std::size_t kSnapshotChunkSize = 256;

// One job's observable state, flattened out of the live Job object.
struct JobRecord {
  JobSpec spec;
  JobState state = JobState::kPending;
  int current_workers = 0;
  double work_remaining = 0.0;
  int preemptions = 0;
  int scaling_operations = 0;
  TimeSec first_start_time = -1.0;
  TimeSec finish_time = -1.0;
};

struct JobChunk {
  std::vector<JobRecord> records;
  // Records per JobState (index = enum value), so the builder can maintain
  // snapshot-wide counts by subtracting the replaced chunk's contribution.
  std::array<std::uint32_t, 4> state_counts{};
};

struct PoolCounters {
  int servers = 0;
  int total_gpus = 0;
  int used_gpus = 0;
  int free_gpus = 0;
};

struct StateSnapshot {
  // Strictly increasing publish counter; readers use it to assert snapshot
  // monotonicity (a torn or stale-reordered load would break it).
  std::uint64_t version = 0;
  // Engine frontier (virtual time) at publication. Monotone across versions.
  TimeSec time = 0.0;
  std::uint64_t events_processed = 0;
  std::size_t job_count = 0;
  std::size_t command_log_size = 0;
  std::array<std::uint64_t, 4> state_counts{};  // by JobState
  PoolCounters training;
  PoolCounters on_loan;
  PoolCounters inference;
  std::vector<std::shared_ptr<const JobChunk>> chunks;
  // Parsed engine-metrics export, refreshed on a wall-clock throttle rather
  // than every publish (exporting the registry is orders of magnitude more
  // expensive than a batch). metrics_time is the frontier it was taken at;
  // it may lag `time` by up to the throttle interval. Null until the first
  // refresh (Start/Restore force one).
  std::shared_ptr<const JsonValue> engine_metrics;
  TimeSec metrics_time = 0.0;

  // Record for `id`, or nullptr when out of range.
  const JobRecord* FindJob(std::int64_t id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= job_count) {
      return nullptr;
    }
    const auto index = static_cast<std::size_t>(id);
    return &chunks[index / kSnapshotChunkSize]
                ->records[index % kSnapshotChunkSize];
  }
};

// Builds successive snapshots for one engine. Engine-thread only; the
// returned snapshots are immutable and safe to hand to any thread.
class SnapshotBuilder {
 public:
  // The sink to arm on the simulator (Simulator::set_job_dirty_sink).
  Job::DirtySink* sink() { return &sink_; }

  // Rebuilds the chunks containing jobs dirtied since the last publish and
  // returns a new snapshot sharing every untouched chunk. `refresh_metrics`
  // re-exports the metrics registry (callers throttle this). The previous
  // metrics document is carried forward otherwise.
  std::shared_ptr<const StateSnapshot> Publish(const Simulator& sim,
                                               std::size_t command_log_size,
                                               bool refresh_metrics);

 private:
  Job::DirtySink sink_;
  std::vector<std::shared_ptr<const JobChunk>> chunks_;
  std::array<std::uint64_t, 4> state_counts_{};
  std::uint64_t version_ = 0;
  std::shared_ptr<const JsonValue> engine_metrics_;
  TimeSec metrics_time_ = 0.0;
  std::vector<std::size_t> dirty_chunks_;  // scratch, reused across publishes
};

// Read-only reply builders: pure functions of the snapshot, callable from any
// thread. Field names and order match the historical engine-side handlers
// byte-for-byte.
JsonValue SnapshotJobReply(const StateSnapshot& snap, std::int64_t id);
JsonValue SnapshotClusterStatsReply(const StateSnapshot& snap);

}  // namespace lyra::svc

#endif  // SRC_SVC_STATE_SNAPSHOT_H_
