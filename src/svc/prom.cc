#include "src/svc/prom.h"

#include <array>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "src/svc/service.h"
#include "src/svc/shard_router.h"
#include "src/svc/state_snapshot.h"
#include "src/svc/telemetry.h"

namespace lyra::svc {
namespace {

void AppendNumber(std::string& out, double v) {
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void AppendCount(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendHeader(std::string& out, const char* family, const char* type,
                  const char* help) {
  out += "# HELP ";
  out += family;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
}

// `labels` is pre-rendered inner label text, e.g. "cmd=\"submit\"" (may be
// empty). All label values here are identifier-like, so no escaping needed.
void AppendSample(std::string& out, const char* family, const char* suffix,
                  const std::string& labels, double value) {
  out += family;
  out += suffix;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  AppendNumber(out, value);
  out += '\n';
}

void AppendCountSample(std::string& out, const char* family,
                       const char* suffix, const std::string& labels,
                       std::uint64_t value) {
  out += family;
  out += suffix;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  AppendCount(out, value);
  out += '\n';
}

// Emits the cumulative _bucket/_sum/_count triplet for one labeled series.
// `labels` must not contain `le` (it is appended here).
void AppendHistogramSeries(std::string& out, const char* family,
                           const std::string& labels,
                           const obs::Histogram& histogram) {
  std::uint64_t cumulative = 0;
  const auto& bounds = histogram.upper_bounds();
  const auto& counts = histogram.bucket_counts();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    std::string bucket_labels = labels;
    if (!bucket_labels.empty()) {
      bucket_labels += ',';
    }
    bucket_labels += "le=\"";
    AppendNumber(bucket_labels, bounds[i]);
    bucket_labels += '"';
    AppendCountSample(out, family, "_bucket", bucket_labels, cumulative);
  }
  cumulative += counts.back();
  std::string inf_labels = labels;
  if (!inf_labels.empty()) {
    inf_labels += ',';
  }
  inf_labels += "le=\"+Inf\"";
  AppendCountSample(out, family, "_bucket", inf_labels, cumulative);
  AppendSample(out, family, "_sum", labels, histogram.sum());
  AppendCountSample(out, family, "_count", labels, histogram.count());
}

void AppendSingleHistogram(std::string& out, const char* family,
                           const char* help, const obs::Histogram& histogram) {
  AppendHeader(out, family, "histogram", help);
  AppendHistogramSeries(out, family, "", histogram);
}

constexpr const char* kJobStateNames[] = {"pending", "running", "finished",
                                          "cancelled"};

void AppendPool(std::string& out, const char* pool, const PoolCounters& c) {
  const std::string base = std::string("pool=\"") + pool + "\"";
  AppendSample(out, "lyra_engine_pool_servers", "", base,
               static_cast<double>(c.servers));
}

void AppendPoolGpus(std::string& out, const char* pool,
                    const PoolCounters& c) {
  const std::string base = std::string("pool=\"") + pool + "\",kind=\"";
  AppendSample(out, "lyra_engine_pool_gpus", "", base + "total\"",
               static_cast<double>(c.total_gpus));
  AppendSample(out, "lyra_engine_pool_gpus", "", base + "used\"",
               static_cast<double>(c.used_gpus));
  AppendSample(out, "lyra_engine_pool_gpus", "", base + "free\"",
               static_cast<double>(c.free_gpus));
}

}  // namespace

std::string RenderPrometheus(const SchedulerService& service) {
  const TelemetrySummary telemetry = service.telemetry().Collect();
  const SchedulerService::Stats stats = service.stats();
  const std::shared_ptr<const StateSnapshot> snap = service.snapshot();

  std::string out;
  out.reserve(32768);

  // --- request latency, per command (skip never-seen commands) ---
  AppendHeader(out, "lyra_svc_request_duration_seconds", "histogram",
               "Request latency from frame decode to reply queued, per "
               "command.");
  for (int c = 0; c < kTelemetryWireCmdCount; ++c) {
    const obs::Histogram& h = telemetry.cmd_latency[static_cast<std::size_t>(c)];
    if (h.count() == 0) {
      continue;
    }
    const std::string labels =
        std::string("cmd=\"") +
        TelemetryCmdName(static_cast<TelemetryCmd>(c)) + "\"";
    AppendHistogramSeries(out, "lyra_svc_request_duration_seconds", labels, h);
  }

  AppendSingleHistogram(out, "lyra_svc_epoll_dispatch_lag_seconds",
                        "Delay from epoll_wait return to event dispatch.",
                        telemetry.dispatch_lag[0]);
  AppendSingleHistogram(out, "lyra_svc_wake_batch_events",
                        "Ready epoll events handled per wakeup.",
                        telemetry.wake_events[0]);
  AppendSingleHistogram(out, "lyra_svc_completion_batch",
                        "Engine completions delivered per mailbox drain.",
                        telemetry.completion_batch[0]);
  AppendSingleHistogram(out, "lyra_svc_engine_batch_apply_seconds",
                        "Engine time applying one command batch.",
                        telemetry.engine_batch_apply[0]);
  AppendSingleHistogram(out, "lyra_svc_engine_snapshot_publish_seconds",
                        "Engine time publishing one read snapshot.",
                        telemetry.engine_snapshot_publish[0]);
  AppendSingleHistogram(out, "lyra_svc_engine_batch_commands",
                        "Commands applied per engine batch.",
                        telemetry.engine_batch_commands[0]);

  // --- per-io-thread transport counters ---
  // The engine shard never touches a socket; exporting its always-zero
  // transport counters would only skew per-thread balance views.
  const auto is_io = [](const TelemetrySummary::ShardCounters& shard) {
    return shard.role.rfind("io", 0) == 0;
  };
  AppendHeader(out, "lyra_svc_io_bytes_total", "counter",
               "Bytes moved by each io thread, by direction.");
  for (const auto& shard : telemetry.shards) {
    if (!is_io(shard)) {
      continue;
    }
    AppendCountSample(out, "lyra_svc_io_bytes_total", "",
                      "thread=\"" + shard.role + "\",dir=\"in\"",
                      shard.bytes_in);
    AppendCountSample(out, "lyra_svc_io_bytes_total", "",
                      "thread=\"" + shard.role + "\",dir=\"out\"",
                      shard.bytes_out);
  }
  AppendHeader(out, "lyra_svc_io_frames_total", "counter",
               "Frames moved by each io thread, by direction.");
  for (const auto& shard : telemetry.shards) {
    if (!is_io(shard)) {
      continue;
    }
    AppendCountSample(out, "lyra_svc_io_frames_total", "",
                      "thread=\"" + shard.role + "\",dir=\"in\"",
                      shard.frames_in);
    AppendCountSample(out, "lyra_svc_io_frames_total", "",
                      "thread=\"" + shard.role + "\",dir=\"out\"",
                      shard.frames_out);
  }
  AppendHeader(out, "lyra_svc_write_queue_bytes_peak", "gauge",
               "High-watermark of queued reply bytes per io thread.");
  for (const auto& shard : telemetry.shards) {
    if (!is_io(shard)) {
      continue;
    }
    AppendCountSample(out, "lyra_svc_write_queue_bytes_peak", "",
                      "thread=\"" + shard.role + "\"",
                      shard.write_queue_peak);
  }
  AppendHeader(out, "lyra_svc_flight_spans_total", "counter",
               "Flight-recorder spans recorded per telemetry shard.");
  for (const auto& shard : telemetry.shards) {
    AppendCountSample(out, "lyra_svc_flight_spans_total", "",
                      "thread=\"" + shard.role + "\"", shard.spans_recorded);
  }

  // --- service counters / gauges (Stats) ---
  AppendHeader(out, "lyra_svc_commands_applied_total", "counter",
               "Engine commands applied.");
  AppendCountSample(out, "lyra_svc_commands_applied_total", "", "",
                    stats.commands_applied);
  AppendHeader(out, "lyra_svc_jobs_submitted_total", "counter",
               "Jobs accepted via submit.");
  AppendCountSample(out, "lyra_svc_jobs_submitted_total", "", "",
                    stats.jobs_submitted);
  AppendHeader(out, "lyra_svc_jobs_cancelled_total", "counter",
               "Jobs cancelled via cancel.");
  AppendCountSample(out, "lyra_svc_jobs_cancelled_total", "", "",
                    stats.jobs_cancelled);
  AppendHeader(out, "lyra_svc_rejected_overload_total", "counter",
               "Commands rejected or shed under backpressure.");
  AppendCountSample(out, "lyra_svc_rejected_overload_total", "", "",
                    stats.rejected_overload);
  AppendHeader(out, "lyra_svc_command_errors_total", "counter",
               "Malformed or failed commands.");
  AppendCountSample(out, "lyra_svc_command_errors_total", "", "",
                    stats.command_errors);
  AppendHeader(out, "lyra_svc_reads_served_total", "counter",
               "Read-only commands answered from the snapshot.");
  AppendCountSample(out, "lyra_svc_reads_served_total", "", "",
                    stats.reads_served);
  AppendHeader(out, "lyra_svc_snapshots_published_total", "counter",
               "Read snapshots published by the engine.");
  AppendCountSample(out, "lyra_svc_snapshots_published_total", "", "",
                    stats.snapshots_published);
  AppendHeader(out, "lyra_svc_queue_depth", "gauge",
               "Engine command queue depth.");
  AppendCountSample(out, "lyra_svc_queue_depth", "", "", stats.queue_depth);
  AppendHeader(out, "lyra_svc_queue_peak", "gauge",
               "Engine command queue high-watermark.");
  AppendCountSample(out, "lyra_svc_queue_peak", "", "", stats.queue_peak);

  AppendHeader(out, "lyra_svc_uptime_seconds", "gauge",
               "Seconds since the service started.");
  AppendSample(out, "lyra_svc_uptime_seconds", "", "", service.UptimeSeconds());

  AppendHeader(out, "lyra_svc_info", "gauge",
               "Service identity; value is always 1.");
  {
    std::string labels = "scheduler=\"";
    labels += service.options().engine.scheduler;
    labels += "\",reclaim=\"";
    labels += service.options().engine.reclaim;
    labels += "\",driver=\"";
    labels += service.driver_name();
    labels += '"';
    AppendSample(out, "lyra_svc_info", "", labels, 1.0);
  }

  // --- engine gauges from the read snapshot ---
  if (snap != nullptr) {
    AppendHeader(out, "lyra_engine_virtual_time_seconds", "gauge",
                 "Engine virtual-time frontier.");
    AppendSample(out, "lyra_engine_virtual_time_seconds", "", "", snap->time);
    AppendHeader(out, "lyra_engine_events_processed_total", "counter",
                 "Discrete events processed by the engine.");
    AppendCountSample(out, "lyra_engine_events_processed_total", "", "",
                      snap->events_processed);
    AppendHeader(out, "lyra_engine_snapshot_version", "gauge",
                 "Monotone version of the published read snapshot.");
    AppendCountSample(out, "lyra_engine_snapshot_version", "", "",
                      snap->version);
    AppendHeader(out, "lyra_engine_jobs", "gauge",
                 "Jobs known to the engine, by state.");
    for (std::size_t s = 0; s < snap->state_counts.size(); ++s) {
      AppendCountSample(out, "lyra_engine_jobs", "",
                        std::string("state=\"") + kJobStateNames[s] + "\"",
                        snap->state_counts[s]);
    }
    AppendHeader(out, "lyra_engine_pool_servers", "gauge",
                 "Servers per cluster pool.");
    AppendPool(out, "training", snap->training);
    AppendPool(out, "on_loan", snap->on_loan);
    AppendPool(out, "inference", snap->inference);
    AppendHeader(out, "lyra_engine_pool_gpus", "gauge",
                 "GPUs per cluster pool, by kind (total/used/free).");
    AppendPoolGpus(out, "training", snap->training);
    AppendPoolGpus(out, "on_loan", snap->on_loan);
    AppendPoolGpus(out, "inference", snap->inference);
  }
  return out;
}

std::string RenderPrometheus(const ShardRouter& router) {
  if (router.shard_count() == 1) {
    // Byte-for-byte the unsharded exposition: no shard labels, no extra
    // families, so dashboards built against a one-shard daemon never change.
    return RenderPrometheus(*router.front());
  }
  const int n = router.shard_count();
  std::vector<TelemetrySummary> shard_telemetry;
  std::vector<SchedulerService::Stats> shard_stats;
  std::vector<std::shared_ptr<const StateSnapshot>> shard_snaps;
  shard_telemetry.reserve(static_cast<std::size_t>(n));
  shard_stats.reserve(static_cast<std::size_t>(n));
  shard_snaps.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    shard_telemetry.push_back(router.shard(k)->telemetry().Collect());
    shard_stats.push_back(router.shard(k)->stats());
    shard_snaps.push_back(router.shard(k)->snapshot());
  }
  // The front shard's registry is where the I/O threads live; every other
  // registry holds only that shard's engine thread.
  const TelemetrySummary& front = shard_telemetry.front();
  const SchedulerService::Stats total = router.AggregateStats();
  const SchedulerService& front_service = *router.front();

  std::string out;
  out.reserve(65536);

  const auto shard_label = [](int k) {
    return "shard=\"" + std::to_string(k) + "\"";
  };

  // --- request latency (recorded by the I/O threads; front registry) ---
  AppendHeader(out, "lyra_svc_request_duration_seconds", "histogram",
               "Request latency from frame decode to reply queued, per "
               "command.");
  for (int c = 0; c < kTelemetryWireCmdCount; ++c) {
    const obs::Histogram& h = front.cmd_latency[static_cast<std::size_t>(c)];
    if (h.count() == 0) {
      continue;
    }
    const std::string labels =
        std::string("cmd=\"") +
        TelemetryCmdName(static_cast<TelemetryCmd>(c)) + "\"";
    AppendHistogramSeries(out, "lyra_svc_request_duration_seconds", labels, h);
  }

  AppendSingleHistogram(out, "lyra_svc_epoll_dispatch_lag_seconds",
                        "Delay from epoll_wait return to event dispatch.",
                        front.dispatch_lag[0]);
  AppendSingleHistogram(out, "lyra_svc_wake_batch_events",
                        "Ready epoll events handled per wakeup.",
                        front.wake_events[0]);
  AppendSingleHistogram(out, "lyra_svc_completion_batch",
                        "Engine completions delivered per mailbox drain.",
                        front.completion_batch[0]);

  // --- engine histograms: merged total first (first-match consumers see
  // the fleet), then one series per shard ---
  const auto engine_histogram = [&](const char* family, const char* help,
                                    auto member) {
    AppendHeader(out, family, "histogram", help);
    obs::Histogram merged = (shard_telemetry[0].*member)[0];
    for (int k = 1; k < n; ++k) {
      merged.Merge((shard_telemetry[static_cast<std::size_t>(k)].*member)[0]);
    }
    AppendHistogramSeries(out, family, "", merged);
    for (int k = 0; k < n; ++k) {
      AppendHistogramSeries(
          out, family, shard_label(k),
          (shard_telemetry[static_cast<std::size_t>(k)].*member)[0]);
    }
  };
  engine_histogram("lyra_svc_engine_batch_apply_seconds",
                   "Engine time applying one command batch.",
                   &TelemetrySummary::engine_batch_apply);
  engine_histogram("lyra_svc_engine_snapshot_publish_seconds",
                   "Engine time publishing one read snapshot.",
                   &TelemetrySummary::engine_snapshot_publish);
  engine_histogram("lyra_svc_engine_batch_commands",
                   "Commands applied per engine batch.",
                   &TelemetrySummary::engine_batch_commands);

  // --- per-io-thread transport counters (front registry only) ---
  const auto is_io = [](const TelemetrySummary::ShardCounters& shard) {
    return shard.role.rfind("io", 0) == 0;
  };
  AppendHeader(out, "lyra_svc_io_bytes_total", "counter",
               "Bytes moved by each io thread, by direction.");
  for (const auto& shard : front.shards) {
    if (!is_io(shard)) {
      continue;
    }
    AppendCountSample(out, "lyra_svc_io_bytes_total", "",
                      "thread=\"" + shard.role + "\",dir=\"in\"",
                      shard.bytes_in);
    AppendCountSample(out, "lyra_svc_io_bytes_total", "",
                      "thread=\"" + shard.role + "\",dir=\"out\"",
                      shard.bytes_out);
  }
  AppendHeader(out, "lyra_svc_io_frames_total", "counter",
               "Frames moved by each io thread, by direction.");
  for (const auto& shard : front.shards) {
    if (!is_io(shard)) {
      continue;
    }
    AppendCountSample(out, "lyra_svc_io_frames_total", "",
                      "thread=\"" + shard.role + "\",dir=\"in\"",
                      shard.frames_in);
    AppendCountSample(out, "lyra_svc_io_frames_total", "",
                      "thread=\"" + shard.role + "\",dir=\"out\"",
                      shard.frames_out);
  }
  AppendHeader(out, "lyra_svc_write_queue_bytes_peak", "gauge",
               "High-watermark of queued reply bytes per io thread.");
  for (const auto& shard : front.shards) {
    if (!is_io(shard)) {
      continue;
    }
    AppendCountSample(out, "lyra_svc_write_queue_bytes_peak", "",
                      "thread=\"" + shard.role + "\"",
                      shard.write_queue_peak);
  }
  AppendHeader(out, "lyra_svc_flight_spans_total", "counter",
               "Flight-recorder spans recorded per telemetry shard.");
  for (const auto& shard : front.shards) {
    if (!is_io(shard)) {
      continue;
    }
    AppendCountSample(out, "lyra_svc_flight_spans_total", "",
                      "thread=\"" + shard.role + "\"", shard.spans_recorded);
  }
  for (int k = 0; k < n; ++k) {
    for (const auto& shard : shard_telemetry[static_cast<std::size_t>(k)].shards) {
      if (is_io(shard)) {
        continue;
      }
      AppendCountSample(out, "lyra_svc_flight_spans_total", "",
                        "thread=\"" + shard.role + "\"," + shard_label(k),
                        shard.spans_recorded);
    }
  }

  // --- service counters / gauges: fleet total first, then per shard ---
  const auto stat_family = [&](const char* family, const char* type,
                               const char* help, std::uint64_t total_value,
                               auto per_shard) {
    AppendHeader(out, family, type, help);
    AppendCountSample(out, family, "", "", total_value);
    for (int k = 0; k < n; ++k) {
      AppendCountSample(out, family, "", shard_label(k),
                        per_shard(shard_stats[static_cast<std::size_t>(k)]));
    }
  };
  stat_family("lyra_svc_commands_applied_total", "counter",
              "Engine commands applied.", total.commands_applied,
              [](const SchedulerService::Stats& s) { return s.commands_applied; });
  stat_family("lyra_svc_jobs_submitted_total", "counter",
              "Jobs accepted via submit.", total.jobs_submitted,
              [](const SchedulerService::Stats& s) { return s.jobs_submitted; });
  stat_family("lyra_svc_jobs_cancelled_total", "counter",
              "Jobs cancelled via cancel.", total.jobs_cancelled,
              [](const SchedulerService::Stats& s) { return s.jobs_cancelled; });
  stat_family("lyra_svc_rejected_overload_total", "counter",
              "Commands rejected or shed under backpressure.",
              total.rejected_overload,
              [](const SchedulerService::Stats& s) { return s.rejected_overload; });
  stat_family("lyra_svc_command_errors_total", "counter",
              "Malformed or failed commands.", total.command_errors,
              [](const SchedulerService::Stats& s) { return s.command_errors; });
  stat_family("lyra_svc_reads_served_total", "counter",
              "Read-only commands answered from the snapshot.",
              total.reads_served,
              [](const SchedulerService::Stats& s) { return s.reads_served; });
  stat_family("lyra_svc_snapshots_published_total", "counter",
              "Read snapshots published by the engine.",
              total.snapshots_published,
              [](const SchedulerService::Stats& s) {
                return s.snapshots_published;
              });
  stat_family("lyra_svc_queue_depth", "gauge",
              "Engine command queue depth.", total.queue_depth,
              [](const SchedulerService::Stats& s) { return s.queue_depth; });
  stat_family("lyra_svc_queue_peak", "gauge",
              "Engine command queue high-watermark.", total.queue_peak,
              [](const SchedulerService::Stats& s) { return s.queue_peak; });

  AppendHeader(out, "lyra_svc_uptime_seconds", "gauge",
               "Seconds since the service started.");
  AppendSample(out, "lyra_svc_uptime_seconds", "", "",
               front_service.UptimeSeconds());

  AppendHeader(out, "lyra_svc_shards", "gauge",
               "Engine shards behind this front end.");
  AppendCountSample(out, "lyra_svc_shards", "", "",
                    static_cast<std::uint64_t>(n));

  AppendHeader(out, "lyra_svc_info", "gauge",
               "Service identity; value is always 1.");
  {
    std::string labels = "scheduler=\"";
    labels += front_service.options().engine.scheduler;
    labels += "\",reclaim=\"";
    labels += front_service.options().engine.reclaim;
    labels += "\",driver=\"";
    labels += front_service.driver_name();
    labels += '"';
    AppendSample(out, "lyra_svc_info", "", labels, 1.0);
  }

  // --- engine gauges from the per-shard read snapshots ---
  double virtual_time = 0.0;
  std::uint64_t events = 0, version = 0;
  std::array<std::uint64_t, 4> states{};
  PoolCounters training, on_loan, inference;
  bool any_snap = false;
  const auto add_pool = [](PoolCounters& into, const PoolCounters& from) {
    into.servers += from.servers;
    into.total_gpus += from.total_gpus;
    into.used_gpus += from.used_gpus;
    into.free_gpus += from.free_gpus;
  };
  for (const auto& snap : shard_snaps) {
    if (snap == nullptr) {
      continue;
    }
    any_snap = true;
    virtual_time = std::max(virtual_time, snap->time);
    events += snap->events_processed;
    version = std::max(version, snap->version);
    for (std::size_t i = 0; i < states.size(); ++i) {
      states[i] += snap->state_counts[i];
    }
    add_pool(training, snap->training);
    add_pool(on_loan, snap->on_loan);
    add_pool(inference, snap->inference);
  }
  if (any_snap) {
    AppendHeader(out, "lyra_engine_virtual_time_seconds", "gauge",
                 "Engine virtual-time frontier.");
    AppendSample(out, "lyra_engine_virtual_time_seconds", "", "", virtual_time);
    for (int k = 0; k < n; ++k) {
      if (shard_snaps[static_cast<std::size_t>(k)] != nullptr) {
        AppendSample(out, "lyra_engine_virtual_time_seconds", "",
                     shard_label(k),
                     shard_snaps[static_cast<std::size_t>(k)]->time);
      }
    }
    AppendHeader(out, "lyra_engine_events_processed_total", "counter",
                 "Discrete events processed by the engine.");
    AppendCountSample(out, "lyra_engine_events_processed_total", "", "",
                      events);
    for (int k = 0; k < n; ++k) {
      if (shard_snaps[static_cast<std::size_t>(k)] != nullptr) {
        AppendCountSample(
            out, "lyra_engine_events_processed_total", "", shard_label(k),
            shard_snaps[static_cast<std::size_t>(k)]->events_processed);
      }
    }
    AppendHeader(out, "lyra_engine_snapshot_version", "gauge",
                 "Monotone version of the published read snapshot.");
    AppendCountSample(out, "lyra_engine_snapshot_version", "", "", version);
    for (int k = 0; k < n; ++k) {
      if (shard_snaps[static_cast<std::size_t>(k)] != nullptr) {
        AppendCountSample(out, "lyra_engine_snapshot_version", "",
                          shard_label(k),
                          shard_snaps[static_cast<std::size_t>(k)]->version);
      }
    }
    AppendHeader(out, "lyra_engine_jobs", "gauge",
                 "Jobs known to the engine, by state.");
    for (std::size_t st = 0; st < states.size(); ++st) {
      AppendCountSample(out, "lyra_engine_jobs", "",
                        std::string("state=\"") + kJobStateNames[st] + "\"",
                        states[st]);
    }
    for (int k = 0; k < n; ++k) {
      const auto& snap = shard_snaps[static_cast<std::size_t>(k)];
      if (snap == nullptr) {
        continue;
      }
      for (std::size_t st = 0; st < states.size(); ++st) {
        AppendCountSample(out, "lyra_engine_jobs", "",
                          std::string("state=\"") + kJobStateNames[st] +
                              "\"," + shard_label(k),
                          snap->state_counts[st]);
      }
    }
    AppendHeader(out, "lyra_engine_pool_servers", "gauge",
                 "Servers per cluster pool.");
    AppendPool(out, "training", training);
    AppendPool(out, "on_loan", on_loan);
    AppendPool(out, "inference", inference);
    AppendHeader(out, "lyra_engine_pool_gpus", "gauge",
                 "GPUs per cluster pool, by kind (total/used/free).");
    AppendPoolGpus(out, "training", training);
    AppendPoolGpus(out, "on_loan", on_loan);
    AppendPoolGpus(out, "inference", inference);
  }
  return out;
}

const PromSample* PromScrape::Find(
    const std::string& name,
    const std::map<std::string, std::string>& labels) const {
  for (const PromSample& sample : samples) {
    if (sample.name != name) {
      continue;
    }
    bool match = true;
    for (const auto& [key, value] : labels) {
      const auto it = sample.labels.find(key);
      if (it == sample.labels.end() || it->second != value) {
        match = false;
        break;
      }
    }
    if (match) {
      return &sample;
    }
  }
  return nullptr;
}

double PromScrape::Value(const std::string& name,
                         const std::map<std::string, std::string>& labels,
                         double fallback) const {
  const PromSample* sample = Find(name, labels);
  return sample == nullptr ? fallback : sample->value;
}

namespace {

// Parses one `name{k="v",...} value` sample line. The renderer never emits
// escaped quotes inside label values, but accept `\"` anyway for robustness.
Status ParseSampleLine(const std::string& line, PromSample* sample) {
  std::size_t i = 0;
  while (i < line.size() && (std::isalnum(static_cast<unsigned char>(line[i])) ||
                             line[i] == '_' || line[i] == ':')) {
    ++i;
  }
  if (i == 0) {
    return Status::InvalidArgument("prom: sample line without a name: " + line);
  }
  sample->name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t key_start = i;
      while (i < line.size() && line[i] != '=') {
        ++i;
      }
      if (i >= line.size()) {
        return Status::InvalidArgument("prom: unterminated label: " + line);
      }
      const std::string key = line.substr(key_start, i - key_start);
      ++i;  // '='
      if (i >= line.size() || line[i] != '"') {
        return Status::InvalidArgument("prom: label value not quoted: " + line);
      }
      ++i;  // opening quote
      std::string value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          ++i;
        }
        value.push_back(line[i]);
        ++i;
      }
      if (i >= line.size()) {
        return Status::InvalidArgument("prom: unterminated label value: " + line);
      }
      ++i;  // closing quote
      sample->labels[key] = std::move(value);
      if (i < line.size() && line[i] == ',') {
        ++i;
      }
    }
    if (i >= line.size()) {
      return Status::InvalidArgument("prom: unterminated label set: " + line);
    }
    ++i;  // '}'
  }
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  if (i >= line.size()) {
    return Status::InvalidArgument("prom: sample line without a value: " + line);
  }
  const std::string value_text = line.substr(i);
  if (value_text == "+Inf") {
    sample->value = std::numeric_limits<double>::infinity();
  } else if (value_text == "-Inf") {
    sample->value = -std::numeric_limits<double>::infinity();
  } else {
    char* end = nullptr;
    sample->value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) {
      return Status::InvalidArgument("prom: bad sample value: " + line);
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<PromScrape> ParsePrometheus(const std::string& text) {
  PromScrape scrape;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      // "# HELP <family> <text>" / "# TYPE <family> <type>"; other comments
      // are ignored.
      const bool is_help = line.rfind("# HELP ", 0) == 0;
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      if (!is_help && !is_type) {
        continue;
      }
      const std::size_t family_start = 7;
      const std::size_t family_end = line.find(' ', family_start);
      if (family_end == std::string::npos) {
        continue;
      }
      const std::string family =
          line.substr(family_start, family_end - family_start);
      const std::string rest = line.substr(family_end + 1);
      if (is_help) {
        scrape.helps[family] = rest;
      } else {
        scrape.types[family] = rest;
      }
      continue;
    }
    PromSample sample;
    const Status parsed = ParseSampleLine(line, &sample);
    if (!parsed.ok()) {
      return parsed;
    }
    scrape.samples.push_back(std::move(sample));
  }
  return scrape;
}

StatusOr<obs::Histogram> ExtractHistogram(
    const PromScrape& scrape, const std::string& family,
    const std::map<std::string, std::string>& labels) {
  // Buckets arrive in ascending-le order (+Inf last) from any conforming
  // exposition; sortedness is re-checked by the Histogram constructor.
  std::vector<double> bounds;
  std::vector<std::uint64_t> cumulative;
  bool have_inf = false;
  std::uint64_t inf_count = 0;
  const std::string bucket_name = family + "_bucket";
  for (const PromSample& sample : scrape.samples) {
    if (sample.name != bucket_name) {
      continue;
    }
    bool match = true;
    for (const auto& [key, value] : labels) {
      const auto it = sample.labels.find(key);
      if (it == sample.labels.end() || it->second != value) {
        match = false;
        break;
      }
    }
    if (!match) {
      continue;
    }
    const auto le = sample.labels.find("le");
    if (le == sample.labels.end()) {
      continue;
    }
    const auto count = static_cast<std::uint64_t>(sample.value);
    if (le->second == "+Inf") {
      have_inf = true;
      inf_count = count;
    } else {
      bounds.push_back(std::strtod(le->second.c_str(), nullptr));
      cumulative.push_back(count);
    }
  }
  if (bounds.empty() || !have_inf) {
    return Status::NotFound("prom: no histogram for family " + family);
  }
  cumulative.push_back(inf_count);
  std::vector<std::uint64_t> counts(cumulative.size());
  std::uint64_t previous = 0;
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    counts[i] = cumulative[i] >= previous ? cumulative[i] - previous : 0;
    previous = cumulative[i];
  }
  const double sum = scrape.Value(family + "_sum", labels, 0.0);
  return obs::Histogram(std::move(bounds), std::move(counts), sum);
}

}  // namespace lyra::svc
