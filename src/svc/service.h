// SchedulerService: the online scheduler daemon core (DESIGN.md §8).
//
// Wraps the Simulator/ClusterState/Lyra orchestrator stack behind a
// single-writer command queue: one engine thread owns the simulation and
// drains the queue in batches — one lock acquisition and one snapshot
// publication per batch — so pipelining clients amortize mutex/condvar
// traffic across many commands. Backpressure is explicit: when the queue is
// full, submission completes immediately with an `overloaded` reply carrying
// a retry-after hint, so socket workers never wedge behind a slow engine.
//
// Read-only commands (query_job, cluster_stats, metrics, ping) never touch
// the queue. After every applied batch the engine publishes an immutable
// StateSnapshot through an atomic shared_ptr swap; ReadReply answers from
// the latest snapshot on the caller's thread, RCU-style, with no locks.
// Because the publish happens before batch completions are delivered, a
// client that pipelines a write and then a read on one connection always
// reads its own write.
//
// Commands are JSON objects with a "cmd" field: submit, cancel, query_job,
// cluster_stats, metrics, advance, drain, snapshot, ping, shutdown. Mutating
// commands are stamped with virtual time (max of the engine frontier, the
// time driver's clock, and an optional explicit "at" parameter) and recorded
// in an in-memory command log; the engine always steps to the stamp before
// applying, which makes its event sequence a pure function of the logged
// command sequence. That is the warm-restart invariant: a snapshot persists
// the EngineConfig plus the command log, and Restore replays it into a
// bit-identical engine (same decision log, same fault-log hash). Batching
// changes when commands are applied, never their stamps, so the invariant is
// unaffected by pipelining.
#ifndef SRC_SVC_SERVICE_H_
#define SRC_SVC_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/svc/registry.h"
#include "src/svc/snapshot.h"
#include "src/svc/state_snapshot.h"
#include "src/svc/telemetry.h"
#include "src/svc/time_driver.h"

namespace lyra::svc {

struct ServiceOptions {
  EngineConfig engine;
  // Runtime knobs; none of these affect scheduling decisions, so none are
  // snapshotted.
  int queue_capacity = 1024;
  // Virtual-time mode only: free-run the engine toward quiescence between
  // commands (a daemon's jobs make progress without client traffic). Leave
  // off for deterministic scripting, where the engine moves only on command
  // stamps and explicit advance/drain.
  bool auto_advance = false;
  // Hint clients receive with an `overloaded` rejection.
  double retry_after_ms = 50.0;
  // Minimum wall-clock interval between metrics re-exports into the read
  // snapshot; bounds how stale a `metrics` reply's engine section can be.
  double metrics_refresh_ms = 10.0;
  // When non-empty, the engine streams a Perfetto trace here (including the
  // service's own command instants on the svc track), written on Stop().
  std::string trace_path;
  // Federation only: size loan grants from a UsagePredictor over each
  // training cluster's pending demand instead of the raw pending-job count
  // ("seasonal-naive" | "lstm" | "last-value"; empty = off). Predictor
  // state is not snapshotted — a restored federation starts it cold.
  std::string loan_predictor;
};

class SchedulerService {
 public:
  struct Stats {
    std::uint64_t commands_applied = 0;
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_cancelled = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t command_errors = 0;
    // Read-only commands answered from the snapshot (never enqueued).
    std::uint64_t reads_served = 0;
    std::uint64_t snapshots_published = 0;
    std::size_t queue_depth = 0;
    std::size_t queue_peak = 0;
  };

  // How a command is routed. Reads are answered from the snapshot on the
  // caller's thread; engine commands are queued to the single writer;
  // unknown commands fail inline without touching the queue.
  enum class CmdClass { kRead, kEngine, kUnknown };
  static CmdClass Classify(const std::string& cmd);
  // Table-mapped overload for front ends that already resolved the command
  // name to a TelemetryCmd (one string scan instead of two).
  static CmdClass Classify(TelemetryCmd cmd);

  // Invoked exactly once with the reply, on the engine thread for queued
  // commands or inline on the caller's thread for immediate rejections
  // (overload, stopped service). Never invoked under a service lock.
  using Completion = std::function<void(JsonValue reply)>;

  // Allocation-free alternative to Completion for high-rate front ends: the
  // queue holds {sink, two caller-chosen words} instead of a type-erased
  // closure, so enqueuing a command costs a shared_ptr bump rather than a
  // heap-allocated std::function whose capture outgrows the small-buffer
  // slot. Same delivery contract as Completion.
  class CompletionSink {
   public:
    virtual ~CompletionSink() = default;
    virtual void OnReply(std::uint64_t a, std::uint64_t b, JsonValue reply) = 0;
  };

  SchedulerService(ServiceOptions options, std::unique_ptr<TimeDriver> driver);
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  // Builds the engine and starts the engine thread. InvalidArgument on
  // unknown scheduler/reclaim names.
  Status Start();

  // Builds the engine from `snapshot_path` (its EngineConfig overrides
  // options.engine) and replays the persisted command log before serving.
  // Call instead of Start().
  Status Restore(const std::string& snapshot_path);

  // Same, from an in-memory LYRASNAP file image — the multi-shard restore
  // path, where the container carries each shard's image byte-for-byte.
  // `origin` only flavors error messages.
  Status RestoreBytes(const std::string& image, const std::string& origin);

  // Processes every queued command, stops the engine thread, and finalizes
  // the engine (flushing the trace file). Idempotent.
  void Stop();

  // True once a shutdown command or Stop() landed.
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  // Thread-safe command entry point. Read-only commands return from the
  // snapshot without blocking; engine commands block until the engine thread
  // replies, except when the queue is full (immediate `overloaded` reply) or
  // the service is stopped (immediate `stopped` reply).
  JsonValue Execute(const JsonValue& request);
  // Wire entry point: parses with JsonParseLimits::Untrusted() and returns
  // the serialized reply.
  std::string ExecuteText(const std::string& request_text);

  // Non-blocking engine-command entry point for the event loop: enqueues and
  // returns; `done` fires with the reply after the batch containing the
  // command is applied and its snapshot published. Rejections (overload,
  // stopped) invoke `done` before returning. Routes read-only commands
  // through ReadReply inline.
  void ExecuteAsync(JsonValue request, Completion done);
  // Variant for front ends that already classified the command (the event
  // loop routes on the class before enqueuing), skipping a re-classify.
  void ExecuteAsync(JsonValue request, Completion done, CmdClass cls);
  // Sink variant: replies (including inline rejections) arrive as
  // sink->OnReply(a, b, reply). No per-command allocation.
  void ExecuteAsync(JsonValue request, std::shared_ptr<CompletionSink> sink,
                    std::uint64_t a, std::uint64_t b, CmdClass cls);

  // Answers a read-only (or unknown) command from the current snapshot.
  // Never touches the engine queue. Callable from any thread.
  JsonValue ReadReply(const JsonValue& request) const;

  // Counts a wire-level protocol error (unparseable or malformed frame) in
  // Stats::command_errors. For transport front ends that parse frames
  // themselves instead of going through ExecuteText.
  void CountProtocolError() const {
    command_errors_.fetch_add(1, std::memory_order_relaxed);
  }

  // Counts one served read in Stats::reads_served. For front ends that
  // answer a read by merging several shards' snapshots themselves (the
  // ShardRouter) rather than going through this service's ReadReply.
  void CountRead() const {
    reads_served_.fetch_add(1, std::memory_order_relaxed);
  }

  // Advisory saturation hint for front ends: true when the engine queue was
  // at capacity at the last push/drain. Reading it races with the engine's
  // drain by design — a front end may shed a command the queue could just
  // have taken (or vice versa); the authoritative check in ExecuteAsync
  // still rejects when the queue really is full. Shedding on the hint lets
  // an overloaded front end answer with a canned rejection instead of
  // paying the reply-build + completion round trip per rejected frame.
  bool EngineSaturated() const {
    return queue_len_.load(std::memory_order_relaxed) >=
           static_cast<std::size_t>(options_.queue_capacity);
  }

  // Records a rejection the front end shed on the EngineSaturated() hint;
  // folded into Stats::rejected_overload.
  void CountShedOverload() const {
    rejected_shed_.fetch_add(1, std::memory_order_relaxed);
  }

  // Racy engine-queue length, for telemetry annotations only (same mirror
  // that backs EngineSaturated()).
  std::size_t QueueDepthHint() const {
    return queue_len_.load(std::memory_order_relaxed);
  }

  // The latest published snapshot (null before Start/Restore).
  std::shared_ptr<const StateSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  // The telemetry registry. Front ends acquire their per-thread shards here;
  // scrapers (RenderPrometheus, trace_dump) merge through it. The registry is
  // logically part of the service's observable state, hence usable through a
  // const service.
  Telemetry& telemetry() const { return telemetry_; }

  // Wall-clock seconds since construction (the telemetry epoch).
  double UptimeSeconds() const {
    return static_cast<double>(TelemetryNowNs() - telemetry_.epoch_ns()) * 1e-9;
  }

  const char* driver_name() const { return driver_->name(); }

  // Writes the flight recorder (every shard's recent request spans, merged
  // and time-sorted) as a Perfetto-loadable Chrome trace at `path`. Returns
  // the number of spans written. Any thread; also wired to SIGUSR1 in
  // lyra_schedd and the `trace_dump` wire command.
  StatusOr<std::size_t> DumpFlightRecorder(const std::string& path) const;

  Stats stats() const;
  const ServiceOptions& options() const { return options_; }
  TimeDriver* driver() { return driver_.get(); }

  // Engine access for embedding and tests. Safe only when no engine thread
  // is running (before Start or after Stop).
  const Simulator& simulator() const { return *engine_.sim; }
  const std::vector<LoggedCommand>& command_log() const { return log_; }

 private:
  struct PendingCommand {
    JsonValue request;
    Completion done;  // null when the sink form is used
    std::shared_ptr<CompletionSink> sink;
    std::uint64_t sink_a = 0;
    std::uint64_t sink_b = 0;
  };

  enum class NextAction { kApply, kStep, kWaitRealTime, kStop };

  void EngineLoop();
  NextAction Next(std::vector<PendingCommand>* batch);
  void PublishSnapshot(bool force_metrics);
  void EnqueueEngine(PendingCommand cmd);
  static void Deliver(PendingCommand& cmd, JsonValue reply);

  JsonValue Apply(const JsonValue& request);
  JsonValue ApplySubmit(const JsonValue& request);
  JsonValue ApplyCancel(const JsonValue& request);
  JsonValue ApplyAdvance(const JsonValue& request);
  JsonValue ApplyDrain();
  JsonValue ApplySnapshot(const JsonValue& request);

  // Shared tail of Restore/RestoreBytes: rebuild the engine and replay.
  Status RestoreSnapshot(ServiceSnapshot snapshot);

  // Virtual-time stamp for a mutating command: max(engine frontier, driver
  // clock, explicit "at"). Monotone by construction.
  TimeSec StampFor(const JsonValue& request) const;
  void TraceCommand(const char* name, TimeSec stamp);
  Status ReplayCommand(const LoggedCommand& cmd);

  ServiceOptions options_;
  std::unique_ptr<TimeDriver> driver_;
  Engine engine_;
  std::vector<LoggedCommand> log_;

  // Sharded telemetry plane (DESIGN.md §9). Mutable: shard acquisition and
  // recording are observability, not service state.
  mutable Telemetry telemetry_;
  // Engine thread's shard; acquired in Start/Restore before the thread runs.
  TelemetryShard* engine_shard_ = nullptr;

  SnapshotBuilder builder_;  // engine-thread only
  std::atomic<std::shared_ptr<const StateSnapshot>> snapshot_;

  std::thread engine_thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  // engine thread waits for work here
  std::deque<PendingCommand> queue_;
  // Lock-free mirror of queue_.size(), refreshed at every push and drain;
  // backs the EngineSaturated() shed hint only (never authoritative).
  std::atomic<std::size_t> queue_len_{0};
  // Front-end sheds on the saturation hint; merged into rejected_overload.
  mutable std::atomic<std::uint64_t> rejected_shed_{0};
  bool stop_requested_ = false;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
  // Engine-thread-only: true once auto-advance reached quiescence (reset by
  // the next mutating command), so the loop blocks instead of spinning.
  bool auto_quiescent_ = false;
  bool finalized_ = false;

  // Engine-thread-local batch accumulators, folded into the mu_-guarded
  // counters once per batch (before completions are delivered, so a caller
  // that saw its reply also sees its command counted).
  std::uint64_t batch_applied_ = 0;
  std::uint64_t batch_submitted_ = 0;
  std::uint64_t batch_cancelled_ = 0;
  std::chrono::steady_clock::time_point last_metrics_refresh_{};

  // Guarded by mu_ so a stats() reader always sees one coherent snapshot of
  // the queue-coupled counters (queue_depth/queue_peak vs applied counts).
  std::uint64_t commands_applied_ = 0;
  std::uint64_t jobs_submitted_ = 0;
  std::uint64_t jobs_cancelled_ = 0;
  std::uint64_t rejected_overload_ = 0;
  std::uint64_t snapshots_published_ = 0;
  std::size_t queue_peak_ = 0;

  // Touched by reader threads on the lock-free path; relaxed atomics.
  mutable std::atomic<std::uint64_t> command_errors_{0};
  mutable std::atomic<std::uint64_t> reads_served_{0};
};

}  // namespace lyra::svc

#endif  // SRC_SVC_SERVICE_H_
