// SchedulerService: the online scheduler daemon core (DESIGN.md §8).
//
// Wraps the Simulator/ClusterState/Lyra orchestrator stack behind a
// single-writer command queue: one engine thread owns the simulation, every
// command (mutating or read-only) is serialized through a bounded queue, and
// callers block on a per-command reply. Backpressure is explicit — when the
// queue is full, Execute returns an `overloaded` reply with a retry-after
// hint instead of blocking, so socket workers never wedge behind a slow
// engine.
//
// Commands are JSON objects with a "cmd" field: submit, cancel, query_job,
// cluster_stats, metrics, advance, drain, snapshot, ping, shutdown. Mutating
// commands are stamped with virtual time (max of the engine frontier, the
// time driver's clock, and an optional explicit "at" parameter) and recorded
// in an in-memory command log; the engine always steps to the stamp before
// applying, which makes its event sequence a pure function of the logged
// command sequence. That is the warm-restart invariant: a snapshot persists
// the EngineConfig plus the command log, and Restore replays it into a
// bit-identical engine (same decision log, same fault-log hash).
#ifndef SRC_SVC_SERVICE_H_
#define SRC_SVC_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/svc/registry.h"
#include "src/svc/snapshot.h"
#include "src/svc/time_driver.h"

namespace lyra::svc {

struct ServiceOptions {
  EngineConfig engine;
  // Runtime knobs; none of these affect scheduling decisions, so none are
  // snapshotted.
  int queue_capacity = 1024;
  // Virtual-time mode only: free-run the engine toward quiescence between
  // commands (a daemon's jobs make progress without client traffic). Leave
  // off for deterministic scripting, where the engine moves only on command
  // stamps and explicit advance/drain.
  bool auto_advance = false;
  // Hint clients receive with an `overloaded` rejection.
  double retry_after_ms = 50.0;
  // When non-empty, the engine streams a Perfetto trace here (including the
  // service's own command instants on the svc track), written on Stop().
  std::string trace_path;
};

class SchedulerService {
 public:
  struct Stats {
    std::uint64_t commands_applied = 0;
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_cancelled = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t command_errors = 0;
    std::size_t queue_depth = 0;
    std::size_t queue_peak = 0;
  };

  SchedulerService(ServiceOptions options, std::unique_ptr<TimeDriver> driver);
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  // Builds the engine and starts the engine thread. InvalidArgument on
  // unknown scheduler/reclaim names.
  Status Start();

  // Builds the engine from `snapshot_path` (its EngineConfig overrides
  // options.engine) and replays the persisted command log before serving.
  // Call instead of Start().
  Status Restore(const std::string& snapshot_path);

  // Processes every queued command, stops the engine thread, and finalizes
  // the engine (flushing the trace file). Idempotent.
  void Stop();

  // True once a shutdown command or Stop() landed.
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  // Thread-safe command entry point. Blocks until the engine thread replies,
  // except when the queue is full (immediate `overloaded` reply) or the
  // service is stopped (immediate `stopped` reply).
  JsonValue Execute(const JsonValue& request);
  // Wire entry point: parses with JsonParseLimits::Untrusted() and returns
  // the serialized reply.
  std::string ExecuteText(const std::string& request_text);

  Stats stats() const;
  const ServiceOptions& options() const { return options_; }
  TimeDriver* driver() { return driver_.get(); }

  // Engine access for embedding and tests. Safe only when no engine thread
  // is running (before Start or after Stop).
  const Simulator& simulator() const { return *engine_.sim; }
  const std::vector<LoggedCommand>& command_log() const { return log_; }

 private:
  struct PendingCommand {
    JsonValue request;
    JsonValue reply;
    bool done = false;
    std::mutex mu;
    std::condition_variable cv;
  };

  enum class NextAction { kApply, kStep, kWaitRealTime, kStop };

  void EngineLoop();
  NextAction Next(std::shared_ptr<PendingCommand>* cmd);
  void Reply(PendingCommand& cmd, JsonValue reply);

  JsonValue Apply(const JsonValue& request);
  JsonValue ApplySubmit(const JsonValue& request);
  JsonValue ApplyCancel(const JsonValue& request);
  JsonValue ApplyAdvance(const JsonValue& request);
  JsonValue ApplyDrain();
  JsonValue ApplyQueryJob(const JsonValue& request) const;
  JsonValue ApplyClusterStats() const;
  JsonValue ApplyMetrics() const;
  JsonValue ApplySnapshot(const JsonValue& request);
  JsonValue ApplyPing() const;

  // Virtual-time stamp for a mutating command: max(engine frontier, driver
  // clock, explicit "at"). Monotone by construction.
  TimeSec StampFor(const JsonValue& request) const;
  void TraceCommand(const char* name, TimeSec stamp);
  Status ReplayCommand(const LoggedCommand& cmd);

  ServiceOptions options_;
  std::unique_ptr<TimeDriver> driver_;
  Engine engine_;
  std::vector<LoggedCommand> log_;

  std::thread engine_thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  // engine thread waits for work here
  std::deque<std::shared_ptr<PendingCommand>> queue_;
  bool stop_requested_ = false;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
  // Engine-thread-only: true once auto-advance reached quiescence (reset by
  // the next mutating command), so the loop blocks instead of spinning.
  bool auto_quiescent_ = false;
  bool finalized_ = false;

  std::atomic<std::uint64_t> commands_applied_{0};
  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_cancelled_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  // mutable: read-only command handlers count their own rejections.
  mutable std::atomic<std::uint64_t> command_errors_{0};
  std::size_t queue_peak_ = 0;  // guarded by mu_
};

}  // namespace lyra::svc

#endif  // SRC_SVC_SERVICE_H_
