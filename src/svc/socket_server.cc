#include "src/svc/socket_server.h"

#include <cerrno>

#include <sys/socket.h>
#include <unistd.h>

#include "src/common/check.h"
#include "src/common/json.h"
#include "src/svc/wire.h"

namespace lyra::svc {

SocketServer::SocketServer(SocketServerOptions options, SchedulerService* service)
    : options_(std::move(options)), service_(service) {
  LYRA_CHECK(service_ != nullptr);
  LYRA_CHECK_GT(options_.workers, 0);
  LYRA_CHECK_GT(options_.max_pending_connections, 0);
}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  StatusOr<int> listener = ListenUnix(options_.path, options_.backlog);
  if (!listener.ok()) {
    return listener.status();
  }
  listen_fd_ = listener.value();
  started_ = true;
  accept_thread_ = std::thread(&SocketServer::AcceptLoop, this);
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(&SocketServer::WorkerLoop, this);
  }
  return Status::Ok();
}

void SocketServer::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  // Unblock the accept thread; workers blocked in read are unblocked by the
  // peer closing (clients of a stopping daemon) or the process exiting — the
  // shutdown below covers fds still queued for a worker.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  cv_.notify_all();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : pending_) {
      ::close(fd);
    }
    pending_.clear();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  ::unlink(options_.path.c_str());
}

void SocketServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed (Stop) or fatal accept error
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_ ||
          pending_.size() >= static_cast<std::size_t>(options_.max_pending_connections)) {
        reject = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (reject) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      JsonValue reply = JsonValue::MakeObject();
      reply.Set("ok", JsonValue::MakeBool(false));
      reply.Set("code", JsonValue::MakeString("overloaded"));
      reply.Set("error", JsonValue::MakeString("connection queue full"));
      (void)WriteFrame(fd, reply.Dump());
      ::close(fd);
      continue;
    }
    cv_.notify_one();
  }
}

void SocketServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (!pending_.empty()) {
        fd = pending_.front();
        pending_.pop_front();
      } else if (stopping_) {
        return;
      }
    }
    if (fd >= 0) {
      ServeConnection(fd);
      ::close(fd);
    }
  }
}

void SocketServer::ServeConnection(int fd) {
  for (;;) {
    StatusOr<std::string> request = ReadFrame(fd);
    if (!request.ok()) {
      // Clean EOF, truncated frame, or an oversized length prefix: tell the
      // peer when the stream is still coherent enough to answer, then drop.
      if (request.status().code() == StatusCode::kInvalidArgument) {
        JsonValue reply = JsonValue::MakeObject();
        reply.Set("ok", JsonValue::MakeBool(false));
        reply.Set("code", JsonValue::MakeString("invalid_argument"));
        reply.Set("error", JsonValue::MakeString(request.status().message()));
        (void)WriteFrame(fd, reply.Dump());
      }
      return;
    }
    const std::string reply = service_->ExecuteText(request.value());
    if (!WriteFrame(fd, reply).ok()) {
      return;
    }
  }
}

}  // namespace lyra::svc
