// Component registry + engine builder for the online scheduler service.
//
// The by-name factories used to live in tools/lyra_sim.cc; they are hoisted
// here so the batch CLI, the daemon, and the in-process service all build
// schedulers, reclaim policies, and usage predictors from the same table —
// the engine a `lyra_schedd` serves is the one `lyra_sim` simulates.
//
// EngineConfig is the decision-relevant subset of the service configuration:
// everything that shapes scheduling outcomes, and nothing else. It is what a
// snapshot persists, so a warm restart rebuilds a bit-identical engine (queue
// sizes, socket paths, and other runtime knobs deliberately stay out).
#ifndef SRC_SVC_REGISTRY_H_
#define SRC_SVC_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/lyra/reclaim.h"
#include "src/predict/predictor.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulator.h"

namespace lyra::svc {

// Registered names, sorted, for error messages and --help text.
const std::vector<std::string>& KnownSchedulerNames();
const std::vector<std::string>& KnownReclaimNames();
const std::vector<std::string>& KnownPredictorNames();

// Status-reporting factories. Unknown names fail with InvalidArgument listing
// the registered alternatives; `learned` additionally needs `policy_weights`
// (a LYRAPOL file, see src/rl/policy.h) and propagates load errors.
StatusOr<std::unique_ptr<JobScheduler>> MakeScheduler(
    const std::string& name, bool info_agnostic, bool tuned,
    const std::string& policy_weights = "");
StatusOr<std::unique_ptr<ReclaimPolicy>> MakeReclaim(const std::string& name);
StatusOr<std::unique_ptr<UsagePredictor>> MakePredictor(const std::string& name);

// Legacy nullptr-on-error variants (no room for a reason; prefer the
// StatusOr factories above). Names match lyra_sim's --scheduler/--reclaim.
std::unique_ptr<JobScheduler> MakeSchedulerByName(const std::string& name,
                                                  bool info_agnostic, bool tuned);
std::unique_ptr<ReclaimPolicy> MakeReclaimByName(const std::string& name);
std::unique_ptr<UsagePredictor> MakeUsagePredictor(bool lstm);

struct EngineConfig {
  std::string scheduler = "lyra";
  std::string reclaim = "lyra";
  // LYRAPOL weights file for scheduler == "learned" (ignored otherwise).
  // Persisted in snapshots so a warm restart reloads the same policy.
  std::string policy_weights;
  bool info_agnostic = false;
  bool tuned = false;
  bool loaning = true;
  bool lstm = false;
  // Deterministic fault injection with chaos-profile defaults (crashes,
  // worker failures, storms, stragglers), seeded from `seed`.
  bool faults = false;
  // Cluster size: 1.0 = the paper's 443 training + 520 inference servers.
  double scale = 0.25;
  // Usage-metering window and max_time base, in days of virtual time.
  double horizon_days = 30.0;
  std::uint64_t seed = 42;

  friend bool operator==(const EngineConfig&, const EngineConfig&) = default;
};

// A fully wired engine: the simulator plus the policy objects it borrows
// (Simulator keeps raw pointers, so they live here alongside it).
struct Engine {
  std::unique_ptr<JobScheduler> scheduler;
  std::unique_ptr<ReclaimPolicy> reclaim;
  std::unique_ptr<Simulator> sim;
};

// Builds an empty-trace engine for online serving. `trace_path`, when
// non-empty, enables the Perfetto trace stream (with the svc track).
// InvalidArgument on unknown scheduler/reclaim names or a bad scale.
StatusOr<Engine> BuildEngine(const EngineConfig& config,
                             const std::string& trace_path = "");

}  // namespace lyra::svc

#endif  // SRC_SVC_REGISTRY_H_
