#include "src/svc/telemetry.h"

#include <algorithm>

namespace lyra::svc {
namespace {

constexpr const char* kCmdNames[kTelemetryCmdCount] = {
    "submit",      "cancel",     "advance",    "drain",       "snapshot",
    "shutdown",    "query_job",  "cluster_stats", "metrics",  "ping",
    "stats_prom",  "trace_dump", "migrate",    "federation_stats",
    "other",       "batch_apply", "snapshot_publish",
};

}  // namespace

const char* TelemetryCmdName(TelemetryCmd cmd) {
  const int index = static_cast<int>(cmd);
  if (index < 0 || index >= kTelemetryCmdCount) {
    return "other";
  }
  return kCmdNames[index];
}

TelemetryCmd TelemetryCmdFromName(const std::string& name) {
  // Only wire commands resolve by name; the engine span kinds are internal.
  for (int i = 0; i < kTelemetryWireCmdCount; ++i) {
    if (name == kCmdNames[i]) {
      return static_cast<TelemetryCmd>(i);
    }
  }
  return TelemetryCmd::kOther;
}

std::vector<double> Log2Histogram::Bounds(double scale) {
  std::vector<double> bounds;
  bounds.reserve(kBucketCount);
  double b = 1.0;
  for (int i = 0; i < kBucketCount; ++i) {
    bounds.push_back(b * scale);
    b *= 2.0;
  }
  return bounds;
}

obs::Histogram Log2Histogram::ToHistogram(double scale) const {
  std::vector<std::uint64_t> counts(kBucketCount + 1);
  for (int i = 0; i <= kBucketCount; ++i) {
    counts[static_cast<std::size_t>(i)] =
        counts_[i].load(std::memory_order_relaxed);
  }
  const double sum =
      static_cast<double>(sum_.load(std::memory_order_relaxed)) * scale;
  return obs::Histogram(Bounds(scale), std::move(counts), sum);
}

void SpanRing::Collect(std::uint8_t shard_index,
                       std::vector<RequestSpan>* out) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(head, kCapacity);
  // Oldest surviving span first. When the ring has wrapped, that's the slot
  // the writer will overwrite next.
  const std::uint64_t start = head - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Slot& slot = slots_[(start + i) % kCapacity];
    RequestSpan span;
    span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    span.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    span.conn = slot.conn.load(std::memory_order_relaxed);
    span.seq = slot.seq.load(std::memory_order_relaxed);
    span.queue_depth = slot.queue_depth.load(std::memory_order_relaxed);
    span.cmd = static_cast<TelemetryCmd>(
        slot.cmd.load(std::memory_order_relaxed) %
        static_cast<std::uint8_t>(kTelemetryCmdCount));
    span.shard = shard_index;
    if (span.start_ns != 0 || span.dur_ns != 0) {
      out->push_back(span);
    }
  }
}

Telemetry::Telemetry() : epoch_ns_(TelemetryNowNs()) {}

TelemetryShard* Telemetry::AcquireShard(const std::string& role) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t index = shard_count_.load(std::memory_order_relaxed);
  if (index >= kMaxShards) {
    return nullptr;
  }
  shards_[index] = std::make_unique<TelemetryShard>(role);
  // Publish the count after the slot: readers iterate [0, count) and must
  // see the pointer.
  shard_count_.store(index + 1, std::memory_order_release);
  return shards_[index].get();
}

TelemetrySummary Telemetry::Collect() const {
  TelemetrySummary summary;
  const double kNsToSeconds = 1e-9;
  for (int c = 0; c < kTelemetryWireCmdCount; ++c) {
    summary.cmd_latency.emplace_back(Log2Histogram::Bounds(kNsToSeconds));
  }
  summary.dispatch_lag.emplace_back(Log2Histogram::Bounds(kNsToSeconds));
  summary.wake_events.emplace_back(Log2Histogram::Bounds(1.0));
  summary.completion_batch.emplace_back(Log2Histogram::Bounds(1.0));
  summary.engine_batch_apply.emplace_back(Log2Histogram::Bounds(kNsToSeconds));
  summary.engine_snapshot_publish.emplace_back(
      Log2Histogram::Bounds(kNsToSeconds));
  summary.engine_batch_commands.emplace_back(Log2Histogram::Bounds(1.0));

  const std::size_t n = shard_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const TelemetryShard& shard = *shards_[i];
    for (int c = 0; c < kTelemetryWireCmdCount; ++c) {
      summary.cmd_latency[static_cast<std::size_t>(c)].Merge(
          shard.cmd_latency[c].ToHistogram(kNsToSeconds));
    }
    summary.dispatch_lag[0].Merge(shard.dispatch_lag.ToHistogram(kNsToSeconds));
    summary.wake_events[0].Merge(shard.wake_events.ToHistogram(1.0));
    summary.completion_batch[0].Merge(shard.completion_batch.ToHistogram(1.0));
    summary.engine_batch_apply[0].Merge(
        shard.engine_batch_apply.ToHistogram(kNsToSeconds));
    summary.engine_snapshot_publish[0].Merge(
        shard.engine_snapshot_publish.ToHistogram(kNsToSeconds));
    summary.engine_batch_commands[0].Merge(
        shard.engine_batch_commands.ToHistogram(1.0));

    TelemetrySummary::ShardCounters counters;
    counters.role = shard.role;
    counters.bytes_in = shard.bytes_in.value();
    counters.bytes_out = shard.bytes_out.value();
    counters.frames_in = shard.frames_in.value();
    counters.frames_out = shard.frames_out.value();
    counters.write_queue_peak = shard.write_queue_peak.value();
    counters.spans_recorded = shard.spans.recorded();
    summary.shards.push_back(std::move(counters));
  }
  return summary;
}

std::vector<RequestSpan> Telemetry::CollectSpans() const {
  std::vector<RequestSpan> spans;
  const std::size_t n = shard_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    shards_[i]->spans.Collect(static_cast<std::uint8_t>(i), &spans);
  }
  std::sort(spans.begin(), spans.end(),
            [](const RequestSpan& a, const RequestSpan& b) {
              return a.start_ns < b.start_ns;
            });
  return spans;
}

}  // namespace lyra::svc
