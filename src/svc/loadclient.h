// Open-loop load client for the scheduler service, shared by the
// lyra_loadgen CLI and bench_svc_saturation.
//
// Open-loop means sends are scheduled by the clock, never gated on replies:
// at an offered rate the daemon cannot sustain, latency and backlog grow
// instead of the load politely slowing down, which is what a saturation
// sweep needs to expose. Each connection runs a paced sender that
// materializes every frame due at the current instant into one buffer and
// ships the batch with a single write (matching the daemon's pipelined
// batching), plus a receiver that drains replies through a FrameDecoder and
// matches them to send stamps FIFO — per-connection reply order is a service
// guarantee, so FIFO matching is exact.
#ifndef SRC_SVC_LOADCLIENT_H_
#define SRC_SVC_LOADCLIENT_H_

#include <cstdint>
#include <string>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"

namespace lyra::svc {

struct LoadClientOptions {
  // Connect over the Unix socket when `unix_path` is non-empty, else over
  // TCP when `tcp_port` >= 0.
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  int connections = 2;
  // Aggregate offered request rate (requests/sec across all connections).
  double rate = 20000.0;
  // Send window in wall seconds; the run ends when every reply (or EOF)
  // has been received.
  double duration_s = 2.0;
  // Pre-serialized request JSON (framing is added per send).
  std::string payload;
  // Scrape the daemon's `stats_prom` exposition before and after the run and
  // difference the submit-duration histogram, attaching server-side
  // percentiles to the LoadPoint (the client-vs-server p99 cross-check).
  // Scrape failures degrade to server_samples == 0, never fail the run.
  bool scrape_server = false;
};

struct LoadPoint {
  double offered_rate = 0.0;
  double wall_s = 0.0;
  int connections = 0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t errors = 0;
  // Replies accepted (`ok:true`) per wall second.
  double accepted_per_s = 0.0;
  // Send-to-reply latency percentiles over every matched reply, measured
  // from the instant the frame actually hit the wire ("achieved").
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t samples = 0;
  // The same percentiles measured from each frame's *intended* send time
  // (start + index / rate) — the coordinated-omission-corrected view. When
  // the daemon keeps up the two agree; past saturation the achieved numbers
  // flatter the server (late sends hide queueing delay) and these do not.
  double corrected_p50_ms = 0.0;
  double corrected_p90_ms = 0.0;
  double corrected_p99_ms = 0.0;
  double corrected_p999_ms = 0.0;
  double corrected_max_ms = 0.0;
  // High-watermark of frames in flight on any one connection — how far the
  // open loop actually got ahead of the daemon during the window.
  std::uint64_t backlog_max = 0;
  // Server-side submit latency (decode -> reply queued) over this run's
  // window, from differencing the daemon's cumulative histogram across the
  // before/after scrapes. Zero server_samples means scraping was off or
  // failed. Bucket-quantile estimates: agreement with the client-side
  // percentiles is within one log2 bucket, not exact.
  double server_p50_ms = 0.0;
  double server_p90_ms = 0.0;
  double server_p99_ms = 0.0;
  double server_p999_ms = 0.0;
  std::uint64_t server_samples = 0;
};

// Runs one open-loop measurement. Unavailable when no connection can be
// established.
StatusOr<LoadPoint> RunOpenLoop(const LoadClientOptions& options);

// One-shot scrape of the daemon's `stats_prom` exposition, reassembling the
// request-duration histogram (seconds) for wire command `cmd`. NotFound when
// the daemon has not yet served that command (zero-count families are not
// exported).
StatusOr<obs::Histogram> ScrapeServerHistogram(const LoadClientOptions& options,
                                               const std::string& cmd);

// Serializes a LoadPoint into the BENCH_perf.json vocabulary.
JsonValue LoadPointJson(const LoadPoint& point);

}  // namespace lyra::svc

#endif  // SRC_SVC_LOADCLIENT_H_
