#include "src/svc/snapshot.h"

#include <cstdio>
#include <cstring>

namespace lyra::svc {
namespace {

constexpr char kMagic[8] = {'L', 'Y', 'R', 'A', 'S', 'N', 'A', 'P'};
constexpr char kShardMagic[8] = {'L', 'Y', 'R', 'A', 'S', 'H', 'R', 'D'};
constexpr char kFedMagic[8] = {'L', 'Y', 'R', 'A', 'F', 'E', 'D', '_'};

std::uint64_t Fnv1a(const std::string& data) {
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

// --- Little-endian field writers/readers ------------------------------------

void PutU8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string& out, std::int64_t v) {
  PutU64(out, static_cast<std::uint64_t>(v));
}

void PutF64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string& out, const std::string& s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

// Cursor over the payload; every read is bounds-checked so a truncated or
// corrupted payload surfaces as DataLoss, never as out-of-bounds access.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  Status U8(std::uint8_t* v) {
    if (!Have(1)) {
      return Truncated();
    }
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return Status::Ok();
  }

  Status U32(std::uint32_t* v) {
    if (!Have(4)) {
      return Truncated();
    }
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_++]))
            << (8 * i);
    }
    return Status::Ok();
  }

  Status U64(std::uint64_t* v) {
    if (!Have(8)) {
      return Truncated();
    }
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_++]))
            << (8 * i);
    }
    return Status::Ok();
  }

  Status I64(std::int64_t* v) {
    std::uint64_t u = 0;
    const Status status = U64(&u);
    *v = static_cast<std::int64_t>(u);
    return status;
  }

  Status F64(double* v) {
    std::uint64_t bits = 0;
    const Status status = U64(&bits);
    std::memcpy(v, &bits, sizeof(*v));
    return status;
  }

  Status Str(std::string* v) {
    std::uint32_t length = 0;
    Status status = U32(&length);
    if (!status.ok()) {
      return status;
    }
    if (!Have(length)) {
      return Truncated();
    }
    v->assign(data_, pos_, length);
    pos_ += length;
    return Status::Ok();
  }

  Status Bool(bool* v) {
    std::uint8_t byte = 0;
    const Status status = U8(&byte);
    *v = byte != 0;
    return status;
  }

  // Raw byte blob with an externally-read u64 length (shard images can
  // exceed the u32-length Str framing).
  Status Str64(std::string* v, std::uint64_t length) {
    if (!Have(length)) {
      return Truncated();
    }
    v->assign(data_, pos_, length);
    pos_ += static_cast<std::size_t>(length);
    return Status::Ok();
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Have(std::size_t n) const { return data_.size() - pos_ >= n; }
  static Status Truncated() { return Status::DataLoss("snapshot payload truncated"); }

  const std::string& data_;
  std::size_t pos_ = 0;
};

void PutConfig(std::string& out, const EngineConfig& config) {
  PutString(out, config.scheduler);
  PutString(out, config.reclaim);
  PutString(out, config.policy_weights);
  PutU8(out, config.info_agnostic ? 1 : 0);
  PutU8(out, config.tuned ? 1 : 0);
  PutU8(out, config.loaning ? 1 : 0);
  PutU8(out, config.lstm ? 1 : 0);
  PutU8(out, config.faults ? 1 : 0);
  PutF64(out, config.scale);
  PutF64(out, config.horizon_days);
  PutU64(out, config.seed);
}

Status ReadConfig(Reader& in, EngineConfig* config) {
  Status status = in.Str(&config->scheduler);
  if (status.ok()) status = in.Str(&config->reclaim);
  if (status.ok()) status = in.Str(&config->policy_weights);
  if (status.ok()) status = in.Bool(&config->info_agnostic);
  if (status.ok()) status = in.Bool(&config->tuned);
  if (status.ok()) status = in.Bool(&config->loaning);
  if (status.ok()) status = in.Bool(&config->lstm);
  if (status.ok()) status = in.Bool(&config->faults);
  if (status.ok()) status = in.F64(&config->scale);
  if (status.ok()) status = in.F64(&config->horizon_days);
  if (status.ok()) status = in.U64(&config->seed);
  return status;
}

void PutCommand(std::string& out, const LoggedCommand& cmd) {
  PutU8(out, static_cast<std::uint8_t>(cmd.kind));
  PutF64(out, cmd.stamp);
  switch (cmd.kind) {
    case CommandKind::kSubmit: {
      const JobSpec& spec = cmd.spec;
      PutF64(out, spec.submit_time);
      PutU32(out, static_cast<std::uint32_t>(spec.gpus_per_worker));
      PutU32(out, static_cast<std::uint32_t>(spec.min_workers));
      PutU32(out, static_cast<std::uint32_t>(spec.max_workers));
      PutU32(out, static_cast<std::uint32_t>(spec.requested_workers));
      PutU8(out, spec.fungible ? 1 : 0);
      PutU8(out, spec.heterogeneous ? 1 : 0);
      PutU8(out, spec.checkpointing ? 1 : 0);
      PutU8(out, static_cast<std::uint8_t>(spec.model));
      PutF64(out, spec.total_work);
      break;
    }
    case CommandKind::kCancel:
      PutI64(out, cmd.job);
      break;
    case CommandKind::kAdvance:
    case CommandKind::kDrain:
      break;
  }
}

Status ReadCommand(Reader& in, LoggedCommand* cmd) {
  std::uint8_t kind = 0;
  Status status = in.U8(&kind);
  if (!status.ok()) {
    return status;
  }
  if (kind < 1 || kind > 4) {
    return Status::DataLoss("unknown command kind in snapshot: " +
                            std::to_string(kind));
  }
  cmd->kind = static_cast<CommandKind>(kind);
  status = in.F64(&cmd->stamp);
  if (!status.ok()) {
    return status;
  }
  switch (cmd->kind) {
    case CommandKind::kSubmit: {
      JobSpec& spec = cmd->spec;
      std::uint32_t u = 0;
      std::uint8_t model = 0;
      status = in.F64(&spec.submit_time);
      if (status.ok()) {
        status = in.U32(&u);
        spec.gpus_per_worker = static_cast<int>(u);
      }
      if (status.ok()) {
        status = in.U32(&u);
        spec.min_workers = static_cast<int>(u);
      }
      if (status.ok()) {
        status = in.U32(&u);
        spec.max_workers = static_cast<int>(u);
      }
      if (status.ok()) {
        status = in.U32(&u);
        spec.requested_workers = static_cast<int>(u);
      }
      if (status.ok()) status = in.Bool(&spec.fungible);
      if (status.ok()) status = in.Bool(&spec.heterogeneous);
      if (status.ok()) status = in.Bool(&spec.checkpointing);
      if (status.ok()) {
        status = in.U8(&model);
        if (model > static_cast<std::uint8_t>(ModelFamily::kOther)) {
          return Status::DataLoss("unknown model family in snapshot");
        }
        spec.model = static_cast<ModelFamily>(model);
      }
      if (status.ok()) status = in.F64(&spec.total_work);
      return status;
    }
    case CommandKind::kCancel:
      return in.I64(&cmd->job);
    case CommandKind::kAdvance:
    case CommandKind::kDrain:
      return Status::Ok();
  }
  return Status::Ok();
}

// Write-then-rename so a crash mid-write never leaves a torn snapshot at
// the target path.
Status WriteFileAtomic(const std::string& file, const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + tmp);
  }
  const std::size_t written = std::fwrite(file.data(), 1, file.size(), out);
  const bool closed = std::fclose(out) == 0;
  if (written != file.size() || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + path);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  std::string file;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    file.append(buf, n);
  }
  const bool read_error = std::ferror(in) != 0;
  std::fclose(in);
  if (read_error) {
    return Status::DataLoss("read error: " + path);
  }
  return file;
}

// Splits a container file into (version, payload) after verifying the given
// magic, the length framing, and the payload checksum. Shared by both the
// single- and multi-shard envelopes, which differ only in magic and payload
// grammar.
StatusOr<std::string> OpenEnvelope(const std::string& file,
                                   const char (&magic)[8],
                                   std::uint32_t expected_version,
                                   const std::string& origin) {
  if (file.size() < sizeof(magic) + 4 + 8 ||
      std::memcmp(file.data(), magic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not a Lyra snapshot: " + origin);
  }
  std::size_t pos = sizeof(magic);
  auto read_u32 = [&](std::uint32_t* v) {
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(static_cast<unsigned char>(file[pos++]))
            << (8 * i);
    }
  };
  auto read_u64 = [&](std::uint64_t* v) {
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(static_cast<unsigned char>(file[pos++]))
            << (8 * i);
    }
  };
  std::uint32_t version = 0;
  read_u32(&version);
  if (version != expected_version) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(expected_version) + ")");
  }
  std::uint64_t payload_size = 0;
  read_u64(&payload_size);
  if (file.size() < pos + payload_size + 8) {
    return Status::DataLoss("snapshot truncated: " + origin);
  }
  std::string payload = file.substr(pos, payload_size);
  pos += payload_size;
  std::uint64_t stored_hash = 0;
  read_u64(&stored_hash);
  if (Fnv1a(payload) != stored_hash) {
    return Status::DataLoss("snapshot checksum mismatch: " + origin);
  }
  return payload;
}

}  // namespace

const char* CommandKindName(CommandKind kind) {
  switch (kind) {
    case CommandKind::kSubmit:
      return "submit";
    case CommandKind::kCancel:
      return "cancel";
    case CommandKind::kAdvance:
      return "advance";
    case CommandKind::kDrain:
      return "drain";
  }
  return "?";
}

std::string EncodeSnapshot(const ServiceSnapshot& snapshot) {
  std::string payload;
  PutConfig(payload, snapshot.config);
  PutU64(payload, snapshot.commands.size());
  for (const LoggedCommand& cmd : snapshot.commands) {
    PutCommand(payload, cmd);
  }
  PutF64(payload, snapshot.horizon);

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  PutU32(file, kSnapshotVersion);
  PutU64(file, payload.size());
  file += payload;
  PutU64(file, Fnv1a(payload));
  return file;
}

Status SaveSnapshot(const ServiceSnapshot& snapshot, const std::string& path) {
  return WriteFileAtomic(EncodeSnapshot(snapshot), path);
}

StatusOr<ServiceSnapshot> LoadSnapshot(const std::string& path) {
  StatusOr<std::string> file = ReadWholeFile(path);
  if (!file.ok()) {
    return file.status();
  }
  return DecodeSnapshot(file.value(), path);
}

StatusOr<ServiceSnapshot> DecodeSnapshot(const std::string& image,
                                         const std::string& origin) {
  StatusOr<std::string> opened =
      OpenEnvelope(image, kMagic, kSnapshotVersion, origin);
  if (!opened.ok()) {
    return opened.status();
  }
  const std::string payload = std::move(opened).value();

  ServiceSnapshot snapshot;
  Reader reader(payload);
  Status status = ReadConfig(reader, &snapshot.config);
  if (!status.ok()) {
    return status;
  }
  std::uint64_t count = 0;
  status = reader.U64(&count);
  if (!status.ok()) {
    return status;
  }
  snapshot.commands.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    LoggedCommand cmd;
    status = ReadCommand(reader, &cmd);
    if (!status.ok()) {
      return status;
    }
    snapshot.commands.push_back(cmd);
  }
  status = reader.F64(&snapshot.horizon);
  if (!status.ok()) {
    return status;
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes in snapshot payload: " + origin);
  }
  return snapshot;
}

std::string EncodeMultiSnapshot(const MultiSnapshot& snapshot) {
  if (snapshot.shard_images.size() == 1) {
    // Bit-compatible with the unsharded service: one shard writes the plain
    // LYRASNAP image, so existing tooling keeps working on shards=1 files.
    return snapshot.shard_images.front();
  }
  std::string payload;
  PutU32(payload, static_cast<std::uint32_t>(snapshot.shard_images.size()));
  PutU64(payload, snapshot.submit_seq);
  for (const std::string& image : snapshot.shard_images) {
    PutU64(payload, image.size());
    payload += image;
  }

  std::string file;
  file.append(kShardMagic, sizeof(kShardMagic));
  PutU32(file, kMultiSnapshotVersion);
  PutU64(file, payload.size());
  file += payload;
  PutU64(file, Fnv1a(payload));
  return file;
}

Status SaveMultiSnapshot(const MultiSnapshot& snapshot,
                         const std::string& path) {
  if (snapshot.shard_images.empty()) {
    return Status::InvalidArgument("multi-snapshot has no shards");
  }
  return WriteFileAtomic(EncodeMultiSnapshot(snapshot), path);
}

StatusOr<MultiSnapshot> DecodeMultiSnapshot(const std::string& image,
                                            const std::string& origin) {
  // A plain LYRASNAP image is a valid one-shard snapshot: the sequence number
  // never influenced routing at one shard, so 0 is exact, not a guess.
  if (image.size() >= sizeof(kMagic) &&
      std::memcmp(image.data(), kMagic, sizeof(kMagic)) == 0) {
    MultiSnapshot snapshot;
    snapshot.shard_images.push_back(image);
    return snapshot;
  }

  StatusOr<std::string> opened =
      OpenEnvelope(image, kShardMagic, kMultiSnapshotVersion, origin);
  if (!opened.ok()) {
    return opened.status();
  }
  const std::string payload = std::move(opened).value();

  MultiSnapshot snapshot;
  Reader reader(payload);
  std::uint32_t shard_count = 0;
  Status status = reader.U32(&shard_count);
  if (!status.ok()) {
    return status;
  }
  if (shard_count == 0 || shard_count > 4096) {
    return Status::DataLoss("implausible shard count in snapshot: " +
                            std::to_string(shard_count));
  }
  status = reader.U64(&snapshot.submit_seq);
  if (!status.ok()) {
    return status;
  }
  snapshot.shard_images.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    std::uint64_t image_size = 0;
    status = reader.U64(&image_size);
    if (!status.ok()) {
      return status;
    }
    std::string shard_image;
    status = reader.Str64(&shard_image, image_size);
    if (!status.ok()) {
      return status;
    }
    snapshot.shard_images.push_back(std::move(shard_image));
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes in snapshot payload: " + origin);
  }
  return snapshot;
}

StatusOr<MultiSnapshot> LoadMultiSnapshot(const std::string& path) {
  StatusOr<std::string> read = ReadWholeFile(path);
  if (!read.ok()) {
    return read.status();
  }
  return DecodeMultiSnapshot(read.value(), path);
}

std::string EncodeFedSnapshot(const FedSnapshot& snapshot) {
  std::string payload;
  PutU64(payload, snapshot.submit_seq);
  PutU64(payload, snapshot.ledger.next_loan_id);
  PutU64(payload, snapshot.ledger.total_granted);
  PutU64(payload, snapshot.ledger.total_reclaimed);
  PutU64(payload, snapshot.ledger.total_returned);
  PutU64(payload, snapshot.ledger.ledger_hash);
  PutU32(payload, static_cast<std::uint32_t>(snapshot.ledger.loans.size()));
  for (const FedLoan& loan : snapshot.ledger.loans) {
    PutU64(payload, loan.id);
    PutU32(payload, loan.lender);
    PutU32(payload, loan.borrower);
    PutI64(payload, loan.gpus);
    PutF64(payload, loan.granted_at);
  }
  PutU32(payload, static_cast<std::uint32_t>(snapshot.clusters.size()));
  for (const FedClusterImage& cluster : snapshot.clusters) {
    PutString(payload, cluster.name);
    PutU8(payload, cluster.kind);
    PutI64(payload, cluster.loan_priority);
    PutU32(payload, cluster.shards);
    PutU64(payload, cluster.image.size());
    payload += cluster.image;
  }

  std::string file;
  file.append(kFedMagic, sizeof(kFedMagic));
  PutU32(file, kFedSnapshotVersion);
  PutU64(file, payload.size());
  file += payload;
  PutU64(file, Fnv1a(payload));
  return file;
}

Status SaveFedSnapshot(const FedSnapshot& snapshot, const std::string& path) {
  if (snapshot.clusters.empty()) {
    return Status::InvalidArgument("federation snapshot has no clusters");
  }
  return WriteFileAtomic(EncodeFedSnapshot(snapshot), path);
}

StatusOr<FedSnapshot> DecodeFedSnapshot(const std::string& image,
                                        const std::string& origin) {
  StatusOr<std::string> opened =
      OpenEnvelope(image, kFedMagic, kFedSnapshotVersion, origin);
  if (!opened.ok()) {
    return opened.status();
  }
  const std::string payload = std::move(opened).value();

  FedSnapshot snapshot;
  Reader reader(payload);
  Status status = reader.U64(&snapshot.submit_seq);
  if (status.ok()) status = reader.U64(&snapshot.ledger.next_loan_id);
  if (status.ok()) status = reader.U64(&snapshot.ledger.total_granted);
  if (status.ok()) status = reader.U64(&snapshot.ledger.total_reclaimed);
  if (status.ok()) status = reader.U64(&snapshot.ledger.total_returned);
  if (status.ok()) status = reader.U64(&snapshot.ledger.ledger_hash);
  if (!status.ok()) {
    return status;
  }
  std::uint32_t loan_count = 0;
  status = reader.U32(&loan_count);
  if (!status.ok()) {
    return status;
  }
  if (loan_count > 1 << 20) {
    return Status::DataLoss("implausible loan count in snapshot: " +
                            std::to_string(loan_count));
  }
  snapshot.ledger.loans.reserve(loan_count);
  for (std::uint32_t i = 0; i < loan_count; ++i) {
    FedLoan loan;
    status = reader.U64(&loan.id);
    if (status.ok()) status = reader.U32(&loan.lender);
    if (status.ok()) status = reader.U32(&loan.borrower);
    if (status.ok()) status = reader.I64(&loan.gpus);
    if (status.ok()) status = reader.F64(&loan.granted_at);
    if (!status.ok()) {
      return status;
    }
    snapshot.ledger.loans.push_back(loan);
  }
  std::uint32_t cluster_count = 0;
  status = reader.U32(&cluster_count);
  if (!status.ok()) {
    return status;
  }
  if (cluster_count == 0 || cluster_count > 256) {
    return Status::DataLoss("implausible cluster count in snapshot: " +
                            std::to_string(cluster_count));
  }
  snapshot.clusters.reserve(cluster_count);
  for (std::uint32_t i = 0; i < cluster_count; ++i) {
    FedClusterImage cluster;
    status = reader.Str(&cluster.name);
    if (status.ok()) status = reader.U8(&cluster.kind);
    if (status.ok()) status = reader.I64(&cluster.loan_priority);
    if (status.ok()) status = reader.U32(&cluster.shards);
    std::uint64_t image_size = 0;
    if (status.ok()) status = reader.U64(&image_size);
    if (status.ok()) status = reader.Str64(&cluster.image, image_size);
    if (!status.ok()) {
      return status;
    }
    snapshot.clusters.push_back(std::move(cluster));
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes in snapshot payload: " + origin);
  }
  return snapshot;
}

StatusOr<FedSnapshot> LoadFedSnapshot(const std::string& path) {
  StatusOr<std::string> read = ReadWholeFile(path);
  if (!read.ok()) {
    return read.status();
  }
  return DecodeFedSnapshot(read.value(), path);
}

}  // namespace lyra::svc
