#include "src/svc/shard_router.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "src/common/check.h"
#include "src/svc/prom.h"
#include "src/svc/replies.h"
#include "src/svc/snapshot.h"

namespace lyra::svc {
namespace {

// Reply fields where "merged" means the furthest shard, not the sum: virtual
// times, high-watermarks, and version counters.
bool MergeByMax(const std::string& key) {
  return key == "time" || key == "metrics_time" || key == "virtual_time" ||
         key == "queue_peak" || key == "snapshot_version";
}

// Structural merge of per-shard reply documents: numbers sum (or max, see
// above), objects recurse, everything else keeps the first shard's value.
// Used for cluster_stats and the engine metrics export, whose members are
// all per-shard tallies.
void MergeNumeric(JsonValue& into, const JsonValue& from) {
  if (!into.is_object() || !from.is_object()) {
    return;
  }
  for (const auto& [key, value] : from.AsObject()) {
    JsonValue* existing = into.FindMutable(key);
    if (existing == nullptr) {
      into.Set(key, value);
    } else if (existing->is_number() && value.is_number()) {
      const double merged = MergeByMax(key)
                                ? std::max(existing->AsDouble(), value.AsDouble())
                                : existing->AsDouble() + value.AsDouble();
      *existing = JsonValue::MakeNumber(merged);
    } else if (existing->is_object() && value.is_object()) {
      MergeNumeric(*existing, value);
    }
  }
}

std::string ShardSuffixPath(const std::string& path, int shard) {
  return path + ".shard" + std::to_string(shard);
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    bytes.append(buf, n);
  }
  const bool read_error = std::ferror(in) != 0;
  std::fclose(in);
  if (read_error) {
    return Status::DataLoss("read error: " + path);
  }
  return bytes;
}

}  // namespace

// Barrier aggregator for fanout commands: each shard's reply lands in its
// own slot (no lock — distinct indices), and the last shard to complete
// merges and delivers to the client's sink. The acq_rel countdown makes
// every slot write visible to the merging thread.
class ShardRouter::FanoutSink : public SchedulerService::CompletionSink {
 public:
  FanoutSink(const ShardRouter* router, TelemetryCmd cmd, JsonValue request,
             std::string snapshot_path, std::uint64_t snapshot_submit_seq,
             std::shared_ptr<SchedulerService::CompletionSink> parent,
             std::uint64_t a, std::uint64_t b, int shards)
      : router_(router),
        cmd_(cmd),
        request_(std::move(request)),
        snapshot_path_(std::move(snapshot_path)),
        snapshot_submit_seq_(snapshot_submit_seq),
        parent_(std::move(parent)),
        a_(a),
        b_(b),
        replies_(static_cast<std::size_t>(shards)),
        remaining_(shards) {}

  void OnReply(std::uint64_t shard, std::uint64_t /*unused*/,
               JsonValue reply) override {
    replies_[static_cast<std::size_t>(shard)] = std::move(reply);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      JsonValue merged = router_->MergeFanout(cmd_, request_, snapshot_path_,
                                              snapshot_submit_seq_, replies_);
      parent_->OnReply(a_, b_, std::move(merged));
    }
  }

 private:
  const ShardRouter* router_;
  const TelemetryCmd cmd_;
  const JsonValue request_;
  const std::string snapshot_path_;
  const std::uint64_t snapshot_submit_seq_;
  const std::shared_ptr<SchedulerService::CompletionSink> parent_;
  const std::uint64_t a_;
  const std::uint64_t b_;
  std::vector<JsonValue> replies_;
  std::atomic<int> remaining_;
};

// Synchronous bridge for ShardRouter::Execute.
class ShardRouter::WaitSink : public SchedulerService::CompletionSink {
 public:
  void OnReply(std::uint64_t /*a*/, std::uint64_t /*b*/,
               JsonValue reply) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      reply_ = std::move(reply);
      done_ = true;
    }
    cv_.notify_all();
  }

  JsonValue Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return done_; });
    return std::move(reply_);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  JsonValue reply_;
};

ShardRouter::ShardRouter(std::vector<SchedulerService*> shards)
    : shards_(std::move(shards)) {
  LYRA_CHECK(!shards_.empty());
  for (SchedulerService* shard : shards_) {
    LYRA_CHECK(shard != nullptr);
  }
}

std::string ShardRouter::PartPath(const std::string& path, int shard) {
  return path + ".part" + std::to_string(shard);
}

std::uint64_t ShardRouter::Hash(const void* data, std::size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint32_t ShardRouter::ShardForKeylessSubmit(std::uint64_t seq) const {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((seq >> (8 * i)) & 0xff);
  }
  return static_cast<std::uint32_t>(
      Hash(bytes, sizeof(bytes)) % static_cast<std::uint64_t>(shard_count()));
}

ShardRouter::Plan ShardRouter::RouteEngine(TelemetryCmd cmd,
                                           const JsonValue& request) const {
  Plan plan;
  if (shard_count() == 1) {
    plan.shed = front()->EngineSaturated();
    return plan;
  }
  switch (cmd) {
    case TelemetryCmd::kSubmit: {
      plan.rewrite_job = true;
      const JsonValue* key = request.Find("key");
      if (key != nullptr && key->is_string()) {
        const std::string& k = key->AsString();
        plan.shard = static_cast<std::uint32_t>(
            Hash(k.data(), k.size()) %
            static_cast<std::uint64_t>(shard_count()));
      } else {
        // Peek only: a shed submit must not consume a routing sequence
        // number, or a restore would route later submits differently than
        // the uninterrupted run (the counter is snapshotted).
        plan.shard = ShardForKeylessSubmit(
            submit_seq_.load(std::memory_order_relaxed));
      }
      plan.shed = shards_[plan.shard]->EngineSaturated();
      return plan;
    }
    case TelemetryCmd::kCancel: {
      const JsonValue* job = request.Find("job");
      if (job != nullptr && job->is_number()) {
        plan.shard = ShardOfJob(job->AsInt());
        plan.rewrite_job = true;
      }
      // Missing/invalid "job": shard 0 produces the usual error reply.
      plan.shed = shards_[plan.shard]->EngineSaturated();
      return plan;
    }
    default:
      plan.fanout = true;
      plan.shed = AnySaturated();
      return plan;
  }
}

std::uint32_t ShardRouter::BeginEngine(TelemetryCmd cmd, JsonValue& request,
                                       const Plan& plan) {
  if (shard_count() == 1 || plan.fanout) {
    return plan.shard;
  }
  if (cmd == TelemetryCmd::kSubmit) {
    const JsonValue* key = request.Find("key");
    if (key != nullptr && key->is_string()) {
      return plan.shard;
    }
    // The fetch_add is the authoritative routing decision: two I/O threads
    // that both planned from the same peeked value still dispatch to
    // distinct, deterministic shards.
    const std::uint64_t seq = submit_seq_.fetch_add(1, std::memory_order_relaxed);
    return ShardForKeylessSubmit(seq);
  }
  if (cmd == TelemetryCmd::kCancel && plan.rewrite_job) {
    const JsonValue* job = request.Find("job");
    if (job != nullptr && job->is_number()) {
      request.Replace("job", JsonValue::MakeNumber(
                                 static_cast<double>(ToLocal(job->AsInt()))));
    }
  }
  return plan.shard;
}

void ShardRouter::DispatchEngine(
    const Plan& plan, std::uint32_t shard, JsonValue request,
    std::shared_ptr<SchedulerService::CompletionSink> sink, std::uint64_t a,
    std::uint64_t b) {
  if (!plan.fanout || shard_count() == 1) {
    shards_[shard]->ExecuteAsync(std::move(request), std::move(sink), a, b,
                                 SchedulerService::CmdClass::kEngine);
    return;
  }
  const TelemetryCmd cmd = TelemetryCmdFromName(request.GetString("cmd"));
  std::string snapshot_path;
  std::uint64_t snapshot_seq = 0;
  if (cmd == TelemetryCmd::kSnapshot) {
    snapshot_path = request.GetString("path");
    // Sampled at dispatch: every shard's queue is FIFO, so the commands a
    // shard applies before its part of this snapshot are exactly the ones
    // dispatched before this point — the counter value here matches the
    // command set the container captures.
    snapshot_seq = submit_seq_.load(std::memory_order_relaxed);
  }
  auto fan = std::make_shared<FanoutSink>(this, cmd, request, snapshot_path,
                                          snapshot_seq, std::move(sink), a, b,
                                          shard_count());
  for (int k = 0; k < shard_count(); ++k) {
    JsonValue copy = request;
    if (cmd == TelemetryCmd::kSnapshot && !snapshot_path.empty()) {
      copy.Replace("path", JsonValue::MakeString(PartPath(snapshot_path, k)));
    }
    shards_[static_cast<std::size_t>(k)]->ExecuteAsync(
        std::move(copy), fan, static_cast<std::uint64_t>(k), 0,
        SchedulerService::CmdClass::kEngine);
  }
}

void ShardRouter::RewriteReplyJob(std::uint32_t shard, JsonValue& reply) const {
  if (shard_count() == 1) {
    return;
  }
  const JsonValue* job = reply.Find("job");
  if (job != nullptr && job->is_number()) {
    reply.Replace("job", JsonValue::MakeNumber(static_cast<double>(
                             ToGlobal(job->AsInt(), shard))));
  }
  // A not_found from cancel/query_job names the shard-local id; clients only
  // ever saw the global one.
  if (!reply.GetBool("ok", false) && reply.GetString("code") == "not_found") {
    static constexpr char kPrefix[] = "no such job: ";
    const std::string message = reply.GetString("error");
    if (message.rfind(kPrefix, 0) == 0) {
      char* end = nullptr;
      const long long local =
          std::strtoll(message.c_str() + sizeof(kPrefix) - 1, &end, 10);
      if (end != nullptr && *end == '\0') {
        reply.Replace("error",
                      JsonValue::MakeString(
                          kPrefix + std::to_string(ToGlobal(local, shard))));
      }
    }
  }
}

JsonValue ShardRouter::MergeFanout(TelemetryCmd cmd, const JsonValue& request,
                                   const std::string& snapshot_path,
                                   std::uint64_t snapshot_submit_seq,
                                   std::vector<JsonValue>& replies) const {
  // Any failed shard fails the whole command; the merged reply is that
  // shard's error annotated with its index. Shards that did apply keep the
  // command in their logs (per-shard replay-exactness is untouched); the
  // client sees the failure and can retry the idempotent fanout commands.
  for (std::size_t k = 0; k < replies.size(); ++k) {
    if (!replies[k].GetBool("ok", false)) {
      JsonValue failed = replies[k];
      failed.Set("shard", JsonValue::MakeNumber(static_cast<double>(k)));
      if (cmd == TelemetryCmd::kSnapshot && !snapshot_path.empty()) {
        for (std::size_t p = 0; p < replies.size(); ++p) {
          std::remove(PartPath(snapshot_path, static_cast<int>(p)).c_str());
        }
      }
      EchoSeq(request, failed);
      return failed;
    }
  }

  JsonValue merged = OkReply();
  switch (cmd) {
    case TelemetryCmd::kAdvance: {
      double time = 0.0, virtual_time = 0.0;
      for (const JsonValue& reply : replies) {
        time = std::max(time, reply.GetDouble("time", 0.0));
        virtual_time = std::max(virtual_time, reply.GetDouble("virtual_time", 0.0));
      }
      merged.Set("time", JsonValue::MakeNumber(time));
      merged.Set("virtual_time", JsonValue::MakeNumber(virtual_time));
      break;
    }
    case TelemetryCmd::kDrain: {
      double time = 0.0, jobs = 0.0, terminal = 0.0;
      for (const JsonValue& reply : replies) {
        time = std::max(time, reply.GetDouble("time", 0.0));
        jobs += reply.GetDouble("jobs", 0.0);
        terminal += reply.GetDouble("terminal", 0.0);
      }
      merged.Set("time", JsonValue::MakeNumber(time));
      merged.Set("jobs", JsonValue::MakeNumber(jobs));
      merged.Set("terminal", JsonValue::MakeNumber(terminal));
      break;
    }
    case TelemetryCmd::kShutdown:
      merged.Set("stopping", JsonValue::MakeBool(true));
      break;
    case TelemetryCmd::kSnapshot: {
      // Gather the per-shard LYRASNAP part files into the LYRASHRD
      // container, then drop the parts. Runs on the last engine thread to
      // finish its part — snapshot writes are engine-thread file I/O anyway.
      MultiSnapshot multi;
      multi.submit_seq = snapshot_submit_seq;
      double time = 0.0, commands = 0.0;
      for (std::size_t k = 0; k < replies.size(); ++k) {
        StatusOr<std::string> image =
            ReadFileBytes(PartPath(snapshot_path, static_cast<int>(k)));
        if (!image.ok()) {
          JsonValue failed = StatusReply(image.status());
          EchoSeq(request, failed);
          return failed;
        }
        multi.shard_images.push_back(std::move(image).value());
        time = std::max(time, replies[k].GetDouble("time", 0.0));
        commands += replies[k].GetDouble("commands", 0.0);
      }
      const Status saved = SaveMultiSnapshot(multi, snapshot_path);
      for (std::size_t k = 0; k < replies.size(); ++k) {
        std::remove(PartPath(snapshot_path, static_cast<int>(k)).c_str());
      }
      if (!saved.ok()) {
        JsonValue failed = StatusReply(saved);
        EchoSeq(request, failed);
        return failed;
      }
      merged.Set("path", JsonValue::MakeString(snapshot_path));
      merged.Set("commands", JsonValue::MakeNumber(commands));
      merged.Set("time", JsonValue::MakeNumber(time));
      merged.Set("shards",
                 JsonValue::MakeNumber(static_cast<double>(replies.size())));
      break;
    }
    default:
      break;
  }
  EchoSeq(request, merged);
  return merged;
}

JsonValue ShardRouter::ReadReply(const JsonValue& request) const {
  if (shard_count() == 1) {
    return front()->ReadReply(request);
  }
  const std::string cmd = request.GetString("cmd");
  if (cmd == "query_job") {
    return QueryJob(request);
  }
  if (cmd == "cluster_stats") {
    return MergedClusterStats(request);
  }
  if (cmd == "metrics") {
    return MergedMetrics(request);
  }
  if (cmd == "ping") {
    return MergedPing(request);
  }
  if (cmd == "stats_prom") {
    return MergedStatsProm(request);
  }
  if (cmd == "trace_dump") {
    return MergedTraceDump(request);
  }
  // Unknown commands: the front shard produces the standard error reply
  // (and counts it).
  return front()->ReadReply(request);
}

JsonValue ShardRouter::QueryJob(const JsonValue& request) const {
  const JsonValue* job = request.Find("job");
  if (job == nullptr || !job->is_number()) {
    return front()->ReadReply(request);  // standard invalid_argument reply
  }
  const std::int64_t global = job->AsInt();
  const std::uint32_t shard = ShardOfJob(global);
  JsonValue local_request = request;  // keeps "seq" for the shard's EchoSeq
  local_request.Replace("job", JsonValue::MakeNumber(
                                   static_cast<double>(ToLocal(global))));
  JsonValue reply = shards_[shard]->ReadReply(local_request);
  RewriteReplyJob(shard, reply);  // also rewrites a not_found's message
  return reply;
}

JsonValue ShardRouter::MergedClusterStats(const JsonValue& request) const {
  JsonValue merged;
  for (int k = 0; k < shard_count(); ++k) {
    const std::shared_ptr<const StateSnapshot> snap = shards_[k]->snapshot();
    if (snap == nullptr || shards_[k]->stopped()) {
      JsonValue reply = ErrorReply("unavailable", "service is stopped");
      EchoSeq(request, reply);
      return reply;
    }
    JsonValue piece = SnapshotClusterStatsReply(*snap);
    if (k == 0) {
      merged = std::move(piece);
    } else {
      MergeNumeric(merged, piece);
    }
  }
  front()->CountRead();
  EchoSeq(request, merged);
  return merged;
}

JsonValue ShardRouter::MergedMetrics(const JsonValue& request) const {
  JsonValue engine;
  double time = 0.0, metrics_time = 0.0, command_log = 0.0;
  for (int k = 0; k < shard_count(); ++k) {
    const std::shared_ptr<const StateSnapshot> snap = shards_[k]->snapshot();
    if (snap == nullptr || shards_[k]->stopped()) {
      JsonValue reply = ErrorReply("unavailable", "service is stopped");
      EchoSeq(request, reply);
      return reply;
    }
    time = std::max(time, snap->time);
    metrics_time = std::max(metrics_time, snap->metrics_time);
    command_log += static_cast<double>(snap->command_log_size);
    const JsonValue piece = snap->engine_metrics != nullptr
                                ? *snap->engine_metrics
                                : JsonValue::MakeNull();
    if (k == 0) {
      engine = piece;
    } else {
      MergeNumeric(engine, piece);
    }
  }
  const SchedulerService::Stats stats = AggregateStats();
  JsonValue reply = OkReply();
  reply.Set("time", JsonValue::MakeNumber(time));
  reply.Set("engine", std::move(engine));
  JsonValue service = JsonValue::MakeObject();
  service.Set("commands_applied", JsonValue::MakeNumber(
                                      static_cast<double>(stats.commands_applied)));
  service.Set("jobs_submitted",
              JsonValue::MakeNumber(static_cast<double>(stats.jobs_submitted)));
  service.Set("jobs_cancelled",
              JsonValue::MakeNumber(static_cast<double>(stats.jobs_cancelled)));
  service.Set("rejected_overload",
              JsonValue::MakeNumber(static_cast<double>(stats.rejected_overload)));
  service.Set("command_errors",
              JsonValue::MakeNumber(static_cast<double>(stats.command_errors)));
  service.Set("reads_served",
              JsonValue::MakeNumber(static_cast<double>(stats.reads_served)));
  service.Set("snapshots_published",
              JsonValue::MakeNumber(
                  static_cast<double>(stats.snapshots_published)));
  service.Set("queue_depth",
              JsonValue::MakeNumber(static_cast<double>(stats.queue_depth)));
  service.Set("queue_peak",
              JsonValue::MakeNumber(static_cast<double>(stats.queue_peak)));
  service.Set("command_log", JsonValue::MakeNumber(command_log));
  service.Set("driver", JsonValue::MakeString(front()->driver_name()));
  service.Set("shards",
              JsonValue::MakeNumber(static_cast<double>(shard_count())));
  reply.Set("service", std::move(service));
  reply.Set("metrics_time", JsonValue::MakeNumber(metrics_time));
  front()->CountRead();
  EchoSeq(request, reply);
  return reply;
}

JsonValue ShardRouter::MergedPing(const JsonValue& request) const {
  JsonValue shards = JsonValue::MakeArray();
  double time = 0.0, virtual_time = 0.0, snapshot_seq = 0.0;
  double commands_applied = 0.0;
  for (int k = 0; k < shard_count(); ++k) {
    const std::shared_ptr<const StateSnapshot> snap = shards_[k]->snapshot();
    if (snap == nullptr || shards_[k]->stopped()) {
      JsonValue reply = ErrorReply("unavailable", "service is stopped");
      EchoSeq(request, reply);
      return reply;
    }
    const SchedulerService::Stats stats = shards_[k]->stats();
    const double shard_virtual = shards_[k]->driver()->Now();
    time = std::max(time, snap->time);
    virtual_time = std::max(virtual_time, shard_virtual);
    snapshot_seq = std::max(snapshot_seq, static_cast<double>(snap->version));
    commands_applied += static_cast<double>(stats.commands_applied);
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("shard", JsonValue::MakeNumber(static_cast<double>(k)));
    entry.Set("commands_applied",
              JsonValue::MakeNumber(static_cast<double>(stats.commands_applied)));
    entry.Set("snapshot_seq",
              JsonValue::MakeNumber(static_cast<double>(snap->version)));
    entry.Set("virtual_time", JsonValue::MakeNumber(shard_virtual));
    shards.Append(std::move(entry));
  }
  JsonValue reply = OkReply();
  reply.Set("time", JsonValue::MakeNumber(time));
  reply.Set("virtual_time", JsonValue::MakeNumber(virtual_time));
  reply.Set("driver", JsonValue::MakeString(front()->driver_name()));
  reply.Set("uptime_s", JsonValue::MakeNumber(front()->UptimeSeconds()));
  reply.Set("commands_applied", JsonValue::MakeNumber(commands_applied));
  reply.Set("snapshot_seq", JsonValue::MakeNumber(snapshot_seq));
  reply.Set("scheduler",
            JsonValue::MakeString(front()->options().engine.scheduler));
  reply.Set("reclaim", JsonValue::MakeString(front()->options().engine.reclaim));
  reply.Set("shard_count",
            JsonValue::MakeNumber(static_cast<double>(shard_count())));
  reply.Set("shards", std::move(shards));
  front()->CountRead();
  EchoSeq(request, reply);
  return reply;
}

JsonValue ShardRouter::MergedStatsProm(const JsonValue& request) const {
  if (front()->snapshot() == nullptr || front()->stopped()) {
    JsonValue reply = ErrorReply("unavailable", "service is stopped");
    EchoSeq(request, reply);
    return reply;
  }
  JsonValue reply = OkReply();
  reply.Set("text", JsonValue::MakeString(RenderPromText()));
  front()->CountRead();
  EchoSeq(request, reply);
  return reply;
}

std::string ShardRouter::RenderPromText() const { return RenderPrometheus(*this); }

JsonValue ShardRouter::MergedTraceDump(const JsonValue& request) const {
  const std::string path = request.GetString("path");
  if (path.empty()) {
    return front()->ReadReply(request);  // standard invalid_argument reply
  }
  double spans = 0.0;
  for (int k = 0; k < shard_count(); ++k) {
    const std::string shard_path = k == 0 ? path : ShardSuffixPath(path, k);
    const StatusOr<std::size_t> dumped =
        shards_[k]->DumpFlightRecorder(shard_path);
    if (!dumped.ok()) {
      front()->CountProtocolError();
      JsonValue reply = StatusReply(dumped.status());
      EchoSeq(request, reply);
      return reply;
    }
    spans += static_cast<double>(dumped.value());
  }
  JsonValue reply = OkReply();
  reply.Set("path", JsonValue::MakeString(path));
  reply.Set("spans", JsonValue::MakeNumber(spans));
  reply.Set("shards", JsonValue::MakeNumber(static_cast<double>(shard_count())));
  front()->CountRead();
  EchoSeq(request, reply);
  return reply;
}

JsonValue ShardRouter::Execute(const JsonValue& request) {
  const TelemetryCmd tcmd = TelemetryCmdFromName(request.GetString("cmd"));
  if (SchedulerService::Classify(tcmd) != SchedulerService::CmdClass::kEngine) {
    return ReadReply(request);
  }
  Plan plan = RouteEngine(tcmd, request);
  // Synchronous callers take the authoritative per-shard rejection rather
  // than the advisory shed (there is no canned-reply fast path to protect).
  plan.shed = false;
  JsonValue mutable_request = request;
  const std::uint32_t shard = BeginEngine(tcmd, mutable_request, plan);
  auto waiter = std::make_shared<WaitSink>();
  DispatchEngine(plan, shard, std::move(mutable_request), waiter, 0, 0);
  JsonValue reply = waiter->Wait();
  if (plan.rewrite_job) {
    RewriteReplyJob(shard, reply);
  }
  return reply;
}

bool ShardRouter::AnySaturated() const {
  for (const SchedulerService* shard : shards_) {
    if (shard->EngineSaturated()) {
      return true;
    }
  }
  return false;
}

std::size_t ShardRouter::QueueDepthHint() const {
  std::size_t depth = 0;
  for (const SchedulerService* shard : shards_) {
    depth += shard->QueueDepthHint();
  }
  return depth;
}

SchedulerService::Stats ShardRouter::AggregateStats() const {
  SchedulerService::Stats total;
  for (const SchedulerService* shard : shards_) {
    const SchedulerService::Stats stats = shard->stats();
    total.commands_applied += stats.commands_applied;
    total.jobs_submitted += stats.jobs_submitted;
    total.jobs_cancelled += stats.jobs_cancelled;
    total.rejected_overload += stats.rejected_overload;
    total.command_errors += stats.command_errors;
    total.reads_served += stats.reads_served;
    total.snapshots_published += stats.snapshots_published;
    total.queue_depth += stats.queue_depth;
    total.queue_peak = std::max(total.queue_peak, stats.queue_peak);
  }
  return total;
}

StatusOr<ShardSet> BuildShardSet(
    const ServiceOptions& base, int shards,
    const std::function<std::unique_ptr<TimeDriver>(int)>& make_driver) {
  if (shards < 1 || shards > 64) {
    return Status::InvalidArgument("shard count must be in [1, 64], got " +
                                   std::to_string(shards));
  }
  ShardSet set;
  for (int k = 0; k < shards; ++k) {
    ServiceOptions options = base;
    // Independent deterministic streams per shard; shard 0 keeps the base
    // seed so a one-shard fleet is the unsharded service exactly.
    options.engine.seed = base.engine.seed + static_cast<std::uint64_t>(k);
    if (!base.trace_path.empty() && k > 0) {
      options.trace_path = ShardSuffixPath(base.trace_path, k);
    }
    auto service = std::make_unique<SchedulerService>(std::move(options),
                                                      make_driver(k));
    const Status started = service->Start();
    if (!started.ok()) {
      return started;  // ~ShardSet stops the shards already started
    }
    set.services.push_back(std::move(service));
  }
  std::vector<SchedulerService*> pointers;
  pointers.reserve(set.services.size());
  for (const auto& service : set.services) {
    pointers.push_back(service.get());
  }
  set.router = std::make_unique<ShardRouter>(std::move(pointers));
  return set;
}

StatusOr<ShardSet> RestoreShardSet(
    const ServiceOptions& base, const std::string& snapshot_path,
    const std::function<std::unique_ptr<TimeDriver>(int)>& make_driver) {
  StatusOr<MultiSnapshot> loaded = LoadMultiSnapshot(snapshot_path);
  if (!loaded.ok()) {
    return loaded.status();
  }
  const MultiSnapshot& multi = loaded.value();
  ShardSet set;
  for (std::size_t k = 0; k < multi.shard_images.size(); ++k) {
    ServiceOptions options = base;
    if (!base.trace_path.empty() && k > 0) {
      options.trace_path =
          ShardSuffixPath(base.trace_path, static_cast<int>(k));
    }
    auto service = std::make_unique<SchedulerService>(std::move(options),
                                                      make_driver(static_cast<int>(k)));
    const std::string origin =
        multi.shard_images.size() == 1
            ? snapshot_path
            : snapshot_path + " (shard " + std::to_string(k) + ")";
    const Status restored = service->RestoreBytes(multi.shard_images[k], origin);
    if (!restored.ok()) {
      return restored;
    }
    set.services.push_back(std::move(service));
  }
  std::vector<SchedulerService*> pointers;
  pointers.reserve(set.services.size());
  for (const auto& service : set.services) {
    pointers.push_back(service.get());
  }
  set.router = std::make_unique<ShardRouter>(std::move(pointers));
  set.router->set_submit_seq(multi.submit_seq);
  return set;
}

}  // namespace lyra::svc
