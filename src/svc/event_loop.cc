#include "src/svc/event_loop.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/common/check.h"
#include "src/common/json.h"
#include "src/common/log.h"
#include "src/svc/prom.h"
#include "src/svc/replies.h"
#include "src/svc/service.h"
#include "src/svc/shard_router.h"
#include "src/svc/wire.h"

namespace lyra::svc {
namespace {

// epoll_event.data.u64 tags. Connection ids start past the reserved range.
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kUnixListenerTag = 1;
constexpr std::uint64_t kTcpListenerTag = 2;
constexpr std::uint64_t kFirstConnId = 16;

constexpr int kMaxEpollEvents = 64;
constexpr std::size_t kReadChunk = 64 * 1024;
// sendmsg iovec cap per call: 128 frames (header + payload each); IOV_MAX
// is 1024 everywhere we run.
constexpr std::size_t kMaxFlushIovecs = 256;
// HTTP request-header cap for the sniffed GET /metrics path; anything a
// scraper sends fits in a fraction of this.
constexpr std::size_t kMaxHttpHeader = 8192;

}  // namespace

class EventLoop::IoThread {
 public:
  // Cross-thread queues into this I/O thread: engine reply completions (a
  // typed record, so the hot path never allocates a closure) plus generic
  // tasks (connection handoff, stop). Held by shared_ptr from completion
  // callbacks, so a reply that lands after the thread shut down is dropped
  // instead of touching freed state. The eventfd is written only when the
  // mailbox transitions from empty — the drain takes everything, so a batch
  // of completions costs one wakeup, not one syscall per reply.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    JsonValue reply;
  };

  struct Mailbox : public SchedulerService::CompletionSink {
    std::mutex mu;
    std::vector<std::function<void()>> tasks;
    std::vector<Completion> completions;
    int wake_fd = -1;
    bool closed = false;

    // Set while the owning I/O thread's loop runs; lets same-thread
    // completions (inline overload rejections during HandleFrame) skip the
    // mailbox mutex + eventfd round trip and fill their slot directly.
    // owner_tid is written before the release-store publishing inline_owner,
    // so a thread that passes the acquire-load + tid check is the owner.
    std::atomic<IoThread*> inline_owner{nullptr};
    std::thread::id owner_tid;

    // CompletionSink: the engine delivers replies straight into this
    // mailbox with (conn_id, seq) as the two carried words — no closure,
    // no per-command allocation on the enqueue side.
    void OnReply(std::uint64_t conn_id, std::uint64_t seq,
                 JsonValue reply) override {
      IoThread* owner = inline_owner.load(std::memory_order_acquire);
      if (owner != nullptr && owner_tid == std::this_thread::get_id()) {
        owner->OnCompletion(conn_id, seq, reply);
        return;
      }
      PostCompletion(conn_id, seq, std::move(reply));
    }

    void Post(std::function<void()> task) {
      int fd = -1;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (closed) {
          return;
        }
        const bool was_empty = tasks.empty() && completions.empty();
        tasks.push_back(std::move(task));
        fd = was_empty ? wake_fd : -1;
      }
      Wake(fd);
    }

    void PostCompletion(std::uint64_t conn_id, std::uint64_t seq,
                        JsonValue reply) {
      int fd = -1;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (closed) {
          return;
        }
        const bool was_empty = tasks.empty() && completions.empty();
        completions.push_back(Completion{conn_id, seq, std::move(reply)});
        fd = was_empty ? wake_fd : -1;
      }
      Wake(fd);
    }

    static void Wake(int fd) {
      if (fd >= 0) {
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
      }
    }
  };

  IoThread(EventLoop* loop, ShardRouter* router, std::size_t max_outbuf,
           int index, std::uint64_t slow_ns)
      : loop_(loop),
        router_(router),
        service_(router->front()),
        max_outbuf_(max_outbuf),
        index_(index),
        slow_ns_(slow_ns),
        mailbox_(std::make_shared<Mailbox>()) {}

  ~IoThread() {
    if (wake_fd_ >= 0) {
      ::close(wake_fd_);
    }
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
    }
  }

  Status Init() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::Unavailable(std::string("epoll_create1: ") +
                                 std::strerror(errno));
    }
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      return Status::Unavailable(std::string("eventfd: ") + std::strerror(errno));
    }
    mailbox_->wake_fd = wake_fd_;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      return Status::Unavailable(std::string("epoll_ctl(wake): ") +
                                 std::strerror(errno));
    }
    return Status::Ok();
  }

  void AddListener(int fd, std::uint64_t tag) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = tag;
    LYRA_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
  }

  void Start() { thread_ = std::thread(&IoThread::Run, this); }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    mailbox_->Post([] {});  // wake the epoll loop
  }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  // Thread-safe: pin a freshly accepted connection to this thread.
  void Adopt(int fd, bool tcp) {
    mailbox_->Post([this, fd, tcp] { Register(fd, tcp); });
  }

 private:
  struct Slot {
    enum class State { kWaitingEngine, kDeferredRead, kReady };
    State state = State::kWaitingEngine;
    JsonValue request;    // deferred reads only
    std::string payload;  // serialized reply once kReady
    char header[4] = {};  // its length prefix
    // Telemetry: stamped at frame decode; latency records when the reply is
    // queued (MakeReady). start_ns == 0 means "don't record" (shed/error
    // replies with no decoded command).
    std::uint64_t start_ns = 0;
    std::uint64_t seq = 0;
    TelemetryCmd cmd = TelemetryCmd::kOther;
    // Which engine shard owns the command, and whether its reply's "job"
    // needs the local->global id rewrite (submit/cancel at shard_count > 1).
    std::uint32_t shard = 0;
    bool rewrite_job = false;
  };

  struct Conn {
    // Decided by the first byte the connection sends: a valid length frame
    // starts with 0x00 (the 1 MiB payload cap keeps the top byte zero), so
    // 'G' can only be an HTTP "GET " — the /metrics scrape path.
    enum class Proto { kUnknown, kFrames, kHttp };

    int fd = -1;
    std::uint64_t id = 0;
    Proto proto = Proto::kUnknown;
    std::string http_buf;  // accumulated HTTP request bytes (kHttp only)
    FrameDecoder decoder;
    // Replies leave strictly in request order: only the kReady prefix of
    // this queue is ever written to the socket.
    std::deque<Slot> slots;
    std::uint64_t base_seq = 0;      // seq of slots.front()
    std::size_t engine_inflight = 0; // kWaitingEngine slots
    // Slots[0, ready_prefix) are known Ready: the deferred-read resolver
    // resumes here instead of rescanning materialized-but-unflushed replies,
    // which would be quadratic in the completion batch size.
    std::size_t ready_prefix = 0;
    std::string out;                 // spilled partial-write bytes
    std::size_t out_consumed = 0;
    std::size_t queued_bytes = 0;    // materialized-but-unsent reply bytes
    bool want_write = false;
    bool read_closed = false;
    // True while EPOLLIN interest is dropped because the engine queue was
    // saturated: instead of parse-and-reject (which burns the core the
    // engine needs), the connection stops reading and the kernel socket
    // buffer pushes back on the client until the engine drains.
    bool read_gated = false;
  };

  void Run() {
    mailbox_->owner_tid = std::this_thread::get_id();
    mailbox_->inline_owner.store(this, std::memory_order_release);
    shard_ =
        service_->telemetry().AcquireShard("io" + std::to_string(index_));
    epoll_event events[kMaxEpollEvents];
    while (!stop_.load(std::memory_order_acquire)) {
      // With gated connections, poll at 1ms so reads resume promptly after
      // the engine drains; otherwise block until traffic arrives.
      const int timeout_ms = gated_conns_.empty() ? -1 : 1;
      const int n = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout_ms);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;
      }
      const std::uint64_t wake_ns = shard_ != nullptr ? TelemetryNowNs() : 0;
      if (shard_ != nullptr && n > 0) {
        shard_->wake_events.Record(static_cast<std::uint64_t>(n));
      }
      for (int i = 0; i < n; ++i) {
        if (shard_ != nullptr) {
          shard_->dispatch_lag.Record(TelemetryNowNs() - wake_ns);
        }
        const std::uint64_t tag = events[i].data.u64;
        if (tag == kWakeTag) {
          std::uint64_t drained;
          while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
          }
          RunTasks();
        } else if (tag == kUnixListenerTag) {
          HandleAccept(loop_->unix_listen_fd_, /*tcp=*/false);
        } else if (tag == kTcpListenerTag) {
          HandleAccept(loop_->tcp_listen_fd_, /*tcp=*/true);
        } else {
          const auto it = conns_.find(tag);
          if (it == conns_.end()) {
            continue;  // closed earlier in this wait batch
          }
          Conn* conn = it->second.get();
          const std::uint32_t evs = events[i].events;
          if ((evs & EPOLLERR) != 0) {
            Close(conn);
            continue;
          }
          bool alive = true;
          if ((evs & EPOLLOUT) != 0) {
            alive = Flush(conn);
          }
          if (alive && (evs & (EPOLLIN | EPOLLHUP)) != 0) {
            HandleReadable(conn);
          }
        }
      }
      if (!gated_conns_.empty() && !router_->AnySaturated()) {
        UngateReads();
      }
    }
    // Teardown: drain completions already posted, flush what the sockets
    // will take without blocking, then drop everything.
    mailbox_->inline_owner.store(nullptr, std::memory_order_release);
    RunTasks();
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) {
      ids.push_back(id);
    }
    for (const std::uint64_t id : ids) {
      const auto it = conns_.find(id);
      if (it != conns_.end()) {
        ResolveDeferredReads(it->second.get());
        Flush(it->second.get());
      }
    }
    for (const auto& [id, conn] : conns_) {
      ::close(conn->fd);
    }
    conns_.clear();
    {
      std::lock_guard<std::mutex> lock(mailbox_->mu);
      mailbox_->closed = true;
      mailbox_->wake_fd = -1;
      mailbox_->tasks.clear();
    }
  }

  void RunTasks() {
    std::vector<std::function<void()>> tasks;
    std::vector<Completion> completions;
    {
      std::lock_guard<std::mutex> lock(mailbox_->mu);
      tasks.swap(mailbox_->tasks);
      completions.swap(mailbox_->completions);
    }
    if (shard_ != nullptr && !completions.empty()) {
      shard_->completion_batch.Record(completions.size());
    }
    for (auto& task : tasks) {
      task();
    }
    // Materialize every completed reply first, then flush each touched
    // connection once: a drained batch of N replies leaves in N/half-iovec
    // sendmsg calls instead of N.
    dirty_conns_.clear();
    for (Completion& completion : completions) {
      OnCompletion(completion.conn_id, completion.seq, completion.reply);
    }
    for (const std::uint64_t id : dirty_conns_) {
      const auto it = conns_.find(id);
      if (it != conns_.end()) {
        Flush(it->second.get());
      }
    }
    dirty_conns_.clear();
    // Hand the drained scratch back so steady-state drains reuse capacity
    // instead of reallocating both vectors every wakeup.
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    if (mailbox_->tasks.empty() && !tasks.empty()) {
      tasks.clear();
      mailbox_->tasks.swap(tasks);
    }
    if (mailbox_->completions.empty() && !completions.empty()) {
      completions.clear();
      mailbox_->completions.swap(completions);
    }
  }

  void HandleAccept(int listen_fd, bool tcp) {
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        return;  // EAGAIN when drained; transient errors also just return
      }
      const std::size_t target =
          loop_->next_thread_.fetch_add(1, std::memory_order_relaxed) %
          loop_->threads_.size();
      loop_->threads_[target]->Adopt(fd, tcp);
    }
  }

  void Register(int fd, bool tcp) {
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    if (tcp) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      return;
    }
    conns_.emplace(conn->id, std::move(conn));
  }

  bool HandleReadable(Conn* conn) {
    char buf[kReadChunk];
    while (!conn->read_closed) {
      if (router_->AnySaturated()) {
        // Backpressure beats shedding on a shared core: every cycle spent
        // parsing a frame the engine cannot take is a cycle the engine
        // doesn't get. Stop reading; the Run loop re-arms once the engine
        // drains (the kernel buffer stalls the client meanwhile).
        GateRead(conn);
        break;
      }
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        Close(conn);
        return false;
      }
      if (n == 0) {
        // Clean EOF: answer what was pipelined, close once it flushes.
        conn->read_closed = true;
        break;
      }
      if (shard_ != nullptr) {
        shard_->bytes_in.Add(static_cast<std::uint64_t>(n));
      }
      if (conn->proto == Conn::Proto::kUnknown) {
        conn->proto =
            buf[0] == 'G' ? Conn::Proto::kHttp : Conn::Proto::kFrames;
      }
      if (conn->proto == Conn::Proto::kHttp) {
        if (!HandleHttp(conn, buf, static_cast<std::size_t>(n))) {
          return false;  // connection closed
        }
        continue;  // read until the request is complete or EAGAIN
      }
      conn->decoder.Append(buf, static_cast<std::size_t>(n));
      std::string payload;
      for (;;) {
        StatusOr<bool> next = conn->decoder.Next(&payload);
        if (!next.ok()) {
          // Oversized length prefix: the stream is unrecoverable. One error
          // frame, then close after it flushes.
          service_->CountProtocolError();
          PushReady(conn, StatusReply(next.status()));
          conn->read_closed = true;
          break;
        }
        if (!next.value()) {
          break;
        }
        HandleFrame(conn, payload);
      }
    }
    return Flush(conn);
  }

  // Minimal one-shot HTTP server for Prometheus scrapers: GET /metrics gets
  // the exposition document, anything else a 404; the connection closes
  // after the response (lyra_top reconnects per poll). Returns false when
  // the connection was torn down.
  bool HandleHttp(Conn* conn, const char* data, std::size_t n) {
    conn->http_buf.append(data, n);
    if (conn->http_buf.size() > kMaxHttpHeader) {
      Close(conn);
      return false;
    }
    if (conn->http_buf.find("\r\n\r\n") == std::string::npos) {
      return true;  // headers still incomplete
    }
    const std::uint64_t start_ns = shard_ != nullptr ? TelemetryNowNs() : 0;
    const std::size_t line_end = conn->http_buf.find("\r\n");
    const std::string line = conn->http_buf.substr(0, line_end);
    // Accept "GET /metrics", with or without a query string or version.
    const bool is_metrics = line.rfind("GET /metrics", 0) == 0 &&
                            (line.size() == 12 || line[12] == ' ' ||
                             line[12] == '?');
    std::string body;
    const char* status_line;
    const char* content_type;
    if (is_metrics) {
      body = router_->RenderPromText();
      status_line = "HTTP/1.1 200 OK";
      content_type = "text/plain; version=0.0.4; charset=utf-8";
    } else {
      body = "not found\n";
      status_line = "HTTP/1.1 404 Not Found";
      content_type = "text/plain; charset=utf-8";
    }
    std::string response = status_line;
    response += "\r\nContent-Type: ";
    response += content_type;
    response += "\r\nContent-Length: ";
    response += std::to_string(body.size());
    response += "\r\nConnection: close\r\n\r\n";
    response += body;
    conn->queued_bytes += response.size();
    conn->out += response;
    conn->read_closed = true;
    conn->http_buf.clear();
    conn->http_buf.shrink_to_fit();
    if (shard_ != nullptr && is_metrics) {
      const std::uint64_t dur = TelemetryNowNs() - start_ns;
      shard_->RecordCmd(TelemetryCmd::kStatsProm, dur);
      shard_->spans.Record(
          start_ns, dur, conn->id, 0,
          static_cast<std::uint32_t>(router_->QueueDepthHint()),
          TelemetryCmd::kStatsProm);
      shard_->write_queue_peak.NoteMax(conn->queued_bytes);
    }
    return true;
  }

  void HandleFrame(Conn* conn, const std::string& payload) {
    const std::uint64_t start_ns = shard_ != nullptr ? TelemetryNowNs() : 0;
    if (shard_ != nullptr) {
      shard_->frames_in.Add(1);
    }
    StatusOr<JsonValue> parsed =
        JsonValue::Parse(payload, JsonParseLimits::Untrusted());
    if (!parsed.ok()) {
      service_->CountProtocolError();
      PushReady(conn, ErrorReply("invalid_argument",
                                 "bad request: " + parsed.status().message()));
      return;
    }
    if (!parsed.value().is_object()) {
      service_->CountProtocolError();
      PushReady(conn,
                ErrorReply("invalid_argument", "request must be a JSON object"));
      return;
    }
    JsonValue request = std::move(parsed.value());
    // One scan over the command name resolves both the telemetry bucket and
    // the routing class (unknown names land on kOther -> kUnknown, which
    // ReadReply answers with the usual error reply).
    const TelemetryCmd tcmd = TelemetryCmdFromName(request.GetString("cmd"));
    const SchedulerService::CmdClass cls = SchedulerService::Classify(tcmd);
    if (cls == SchedulerService::CmdClass::kEngine) {
      const ShardRouter::Plan plan = router_->RouteEngine(tcmd, request);
      if (plan.shed) {
        // Shed on the saturation hint: at heavy overload most engine frames
        // are doomed to rejection, and building + serializing a fresh reply
        // per frame just starves the frames that would be accepted. Answer
        // with one canned pre-serialized rejection instead. The hint racing
        // the engine's drain only means the authoritative check below picks
        // up the boundary cases.
        router_->shard(static_cast<int>(plan.shard))->CountShedOverload();
        if (request.Find("seq") == nullptr) {
          PushReadyRaw(conn, ShedPayload());
        } else {
          JsonValue rejection =
              ErrorReply("overloaded", "command queue full");
          rejection.Set("retry_after_ms",
                        JsonValue::MakeNumber(
                            service_->options().retry_after_ms));
          EchoSeq(request, rejection);
          PushReady(conn, rejection);
        }
        return;
      }
      // BeginEngine consumes the routing counter and rewrites cancel's job
      // id in place; it must precede the slot so the slot records the
      // authoritative shard.
      const std::uint32_t shard = router_->BeginEngine(tcmd, request, plan);
      const std::uint64_t seq = conn->base_seq + conn->slots.size();
      conn->slots.emplace_back();
      Slot& slot = conn->slots.back();
      slot.start_ns = start_ns;
      slot.seq = seq;
      slot.cmd = tcmd;
      slot.shard = shard;
      slot.rewrite_job = plan.rewrite_job;
      ++conn->engine_inflight;
      // Engine thread (or inline on overload) bounces the reply onto the
      // owning I/O thread via the mailbox sink as a typed record;
      // serialization happens there, off the engine. The slot is fully
      // initialized first: a saturated shard rejects inline, re-entering
      // OnCompletion before DispatchEngine returns.
      router_->DispatchEngine(plan, shard, std::move(request), mailbox_,
                              conn->id, seq);
    } else if (conn->engine_inflight > 0) {
      // An engine command ahead of this read is still in flight: defer, so
      // the reply order matches the request order and the read observes the
      // earlier write (its completion follows that batch's snapshot).
      conn->slots.emplace_back();
      Slot& slot = conn->slots.back();
      slot.state = Slot::State::kDeferredRead;
      slot.request = std::move(request);
      slot.start_ns = start_ns;
      slot.seq = conn->base_seq + conn->slots.size() - 1;
      slot.cmd = tcmd;
    } else {
      // Snapshot fast path: answered on this thread, engine never involved.
      conn->slots.emplace_back();
      Slot& slot = conn->slots.back();
      slot.start_ns = start_ns;
      slot.seq = conn->base_seq + conn->slots.size() - 1;
      slot.cmd = tcmd;
      MakeReady(slot, router_->ReadReply(request), conn);
    }
  }

  void MakeReady(Slot& slot, const JsonValue& reply, Conn* conn) {
    slot.payload.clear();
    reply.AppendTo(slot.payload);
    EncodeFrameHeader(static_cast<std::uint32_t>(slot.payload.size()),
                      slot.header);
    slot.state = Slot::State::kReady;
    slot.request = JsonValue();
    conn->queued_bytes += 4 + slot.payload.size();
    if (shard_ != nullptr) {
      shard_->frames_out.Add(1);
      shard_->write_queue_peak.NoteMax(conn->queued_bytes);
      if (slot.start_ns != 0) {
        // decode -> reply-queued: for engine commands this spans the queue
        // wait and batch apply; for reads it is the snapshot answer time.
        const std::uint64_t dur = TelemetryNowNs() - slot.start_ns;
        shard_->RecordCmd(slot.cmd, dur);
        shard_->spans.Record(
            slot.start_ns, dur, conn->id, slot.seq,
            static_cast<std::uint32_t>(router_->QueueDepthHint()), slot.cmd);
        if (slow_ns_ != 0 && dur >= slow_ns_) {
          LYRA_LOG_WARNING(
              "slow request: cmd=%s conn=%llu seq=%llu took %.3f ms",
              TelemetryCmdName(slot.cmd),
              static_cast<unsigned long long>(conn->id),
              static_cast<unsigned long long>(slot.seq),
              static_cast<double>(dur) / 1e6);
        }
      }
    }
  }

  void PushReady(Conn* conn, const JsonValue& reply) {
    conn->slots.emplace_back();
    MakeReady(conn->slots.back(), reply, conn);
  }

  // Ready slot from pre-serialized bytes; the shed path answers thousands
  // of doomed frames per second and must not re-serialize each one. Counts
  // the frame out but records no latency — rejections would poison the
  // request-duration histograms.
  void PushReadyRaw(Conn* conn, const std::string& payload) {
    conn->slots.emplace_back();
    Slot& slot = conn->slots.back();
    slot.payload = payload;
    EncodeFrameHeader(static_cast<std::uint32_t>(slot.payload.size()),
                      slot.header);
    slot.state = Slot::State::kReady;
    conn->queued_bytes += 4 + slot.payload.size();
    if (shard_ != nullptr) {
      shard_->frames_out.Add(1);
      shard_->write_queue_peak.NoteMax(conn->queued_bytes);
    }
  }

  const std::string& ShedPayload() {
    if (shed_payload_.empty()) {
      JsonValue rejection = ErrorReply("overloaded", "command queue full");
      rejection.Set(
          "retry_after_ms",
          JsonValue::MakeNumber(service_->options().retry_after_ms));
      rejection.AppendTo(shed_payload_);
    }
    return shed_payload_;
  }

  void OnCompletion(std::uint64_t conn_id, std::uint64_t seq,
                    JsonValue& reply) {
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) {
      return;  // connection died with the command in flight
    }
    Conn* conn = it->second.get();
    if (seq < conn->base_seq) {
      return;
    }
    const std::size_t index = static_cast<std::size_t>(seq - conn->base_seq);
    if (index >= conn->slots.size()) {
      return;
    }
    Slot& slot = conn->slots[index];
    LYRA_CHECK(slot.state == Slot::State::kWaitingEngine);
    if (slot.rewrite_job) {
      router_->RewriteReplyJob(slot.shard, reply);
    }
    MakeReady(slot, reply, conn);
    --conn->engine_inflight;
    ResolveDeferredReads(conn);
    // The caller (RunTasks) flushes each dirty connection once per drain.
    if (dirty_conns_.empty() || dirty_conns_.back() != conn_id) {
      if (std::find(dirty_conns_.begin(), dirty_conns_.end(), conn_id) ==
          dirty_conns_.end()) {
        dirty_conns_.push_back(conn_id);
      }
    }
  }

  void ResolveDeferredReads(Conn* conn) {
    std::size_t idx = conn->ready_prefix;
    while (idx < conn->slots.size()) {
      Slot& slot = conn->slots[idx];
      if (slot.state == Slot::State::kWaitingEngine) {
        break;
      }
      if (slot.state == Slot::State::kDeferredRead) {
        MakeReady(slot, router_->ReadReply(slot.request), conn);
      }
      ++idx;
    }
    conn->ready_prefix = idx;
  }

  // Writes the completed reply prefix with as few sendmsg calls as the
  // socket allows. Returns false when the connection was closed.
  bool Flush(Conn* conn) {
    for (;;) {
      iovec iov[kMaxFlushIovecs];
      std::size_t niov = 0;
      std::size_t offered = 0;
      const std::size_t out_pending = conn->out.size() - conn->out_consumed;
      if (out_pending > 0) {
        iov[niov].iov_base = conn->out.data() + conn->out_consumed;
        iov[niov].iov_len = out_pending;
        ++niov;
        offered += out_pending;
      }
      for (Slot& slot : conn->slots) {
        if (slot.state != Slot::State::kReady || niov + 2 > kMaxFlushIovecs) {
          break;
        }
        iov[niov].iov_base = slot.header;
        iov[niov].iov_len = sizeof(slot.header);
        ++niov;
        iov[niov].iov_base = slot.payload.data();
        iov[niov].iov_len = slot.payload.size();
        ++niov;
        offered += sizeof(slot.header) + slot.payload.size();
      }
      if (niov == 0) {
        break;  // nothing completed yet
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = niov;
      const ssize_t sent = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (conn->queued_bytes > max_outbuf_) {
            Close(conn);  // peer stopped reading; don't buffer forever
            return false;
          }
          SetWantWrite(conn, true);
          return true;
        }
        Close(conn);  // EPIPE/ECONNRESET: peer is gone
        return false;
      }
      std::size_t n = static_cast<std::size_t>(sent);
      if (shard_ != nullptr) {
        shard_->bytes_out.Add(n);
      }
      conn->queued_bytes -= std::min(conn->queued_bytes, n);
      if (out_pending > 0) {
        const std::size_t take = std::min(n, out_pending);
        conn->out_consumed += take;
        n -= take;
        if (conn->out_consumed == conn->out.size()) {
          conn->out.clear();
          conn->out_consumed = 0;
        }
      }
      while (n > 0) {
        Slot& slot = conn->slots.front();
        const std::size_t size = sizeof(slot.header) + slot.payload.size();
        if (n >= size) {
          n -= size;
          conn->slots.pop_front();
          ++conn->base_seq;
          if (conn->ready_prefix > 0) {
            --conn->ready_prefix;
          }
        } else {
          // Frame partially on the wire: spill the remainder so the next
          // flush resumes mid-frame.
          if (n < sizeof(slot.header)) {
            conn->out.append(slot.header + n, sizeof(slot.header) - n);
            conn->out.append(slot.payload);
          } else {
            conn->out.append(slot.payload, n - sizeof(slot.header),
                             std::string::npos);
          }
          conn->slots.pop_front();
          ++conn->base_seq;
          if (conn->ready_prefix > 0) {
            --conn->ready_prefix;
          }
          n = 0;
        }
      }
      if (static_cast<std::size_t>(sent) < offered) {
        SetWantWrite(conn, true);  // socket buffer filled mid-batch
        return true;
      }
      // Everything offered left; loop in case more ready slots remain
      // beyond the iovec cap.
      if (conn->slots.empty() ||
          conn->slots.front().state != Slot::State::kReady) {
        break;
      }
    }
    SetWantWrite(conn, false);
    if (conn->read_closed && conn->slots.empty() &&
        conn->out.size() == conn->out_consumed) {
      Close(conn);
      return false;
    }
    return true;
  }

  void UpdateInterest(Conn* conn) {
    epoll_event ev{};
    ev.events = (conn->read_gated ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
                (conn->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  void SetWantWrite(Conn* conn, bool want) {
    if (conn->want_write == want) {
      return;
    }
    conn->want_write = want;
    UpdateInterest(conn);
  }

  void GateRead(Conn* conn) {
    if (conn->read_gated) {
      return;
    }
    conn->read_gated = true;
    UpdateInterest(conn);
    gated_conns_.push_back(conn->id);
  }

  // Re-arm every gated connection and drain what accumulated in its socket
  // buffer while reads were off. HandleReadable may re-gate (engine
  // saturated again mid-drain) or close the connection, so iterate a
  // drained copy and let gated_conns_ refill.
  void UngateReads() {
    std::vector<std::uint64_t> gated;
    gated.swap(gated_conns_);
    for (const std::uint64_t id : gated) {
      const auto it = conns_.find(id);
      if (it == conns_.end()) {
        continue;
      }
      Conn* conn = it->second.get();
      conn->read_gated = false;
      UpdateInterest(conn);
      HandleReadable(conn);
    }
  }

  void Close(Conn* conn) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conns_.erase(conn->id);  // destroys *conn
  }

  EventLoop* loop_;
  ShardRouter* router_;
  // router_->front(): telemetry registry, protocol-error counter, identity.
  SchedulerService* service_;
  std::size_t max_outbuf_;
  int index_;
  std::uint64_t slow_ns_;  // 0 disables the slow-request log
  // This thread's telemetry block; acquired at Run() start, written only by
  // this thread. Nullptr (recording skipped) if the registry is full.
  TelemetryShard* shard_ = nullptr;
  std::shared_ptr<Mailbox> mailbox_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint64_t next_conn_id_ = kFirstConnId;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  // Connections with replies materialized in the current completion drain,
  // flushed once at the end of RunTasks.
  std::vector<std::uint64_t> dirty_conns_;
  // Canned serialized overload rejection for the shed fast path (built on
  // first use; this thread only).
  std::string shed_payload_;
  // Connections whose EPOLLIN is dropped while the engine queue is
  // saturated; re-armed by UngateReads() once it drains.
  std::vector<std::uint64_t> gated_conns_;
};

EventLoop::EventLoop(SchedulerService* service, EventLoopOptions options)
    : owned_router_(std::make_unique<ShardRouter>(
          std::vector<SchedulerService*>{service})),
      router_(owned_router_.get()),
      options_(std::move(options)) {
  LYRA_CHECK(service != nullptr);
}

EventLoop::EventLoop(ShardRouter* router, EventLoopOptions options)
    : router_(router), options_(std::move(options)) {
  LYRA_CHECK(router_ != nullptr);
}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  LYRA_CHECK(!started_);
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    return Status::InvalidArgument("event loop needs at least one listener");
  }
  if (options_.io_threads < 1) {
    options_.io_threads = 1;
  }
  if (!options_.unix_path.empty()) {
    StatusOr<int> fd = ListenUnix(options_.unix_path, options_.backlog);
    if (!fd.ok()) {
      return fd.status();
    }
    unix_listen_fd_ = fd.value();
    SetNonBlocking(unix_listen_fd_);
  }
  if (options_.tcp_port >= 0) {
    StatusOr<int> fd =
        ListenTcp(options_.tcp_host, options_.tcp_port, options_.backlog,
                  &tcp_port_);
    if (!fd.ok()) {
      if (unix_listen_fd_ >= 0) {
        ::close(unix_listen_fd_);
        unix_listen_fd_ = -1;
      }
      return fd.status();
    }
    tcp_listen_fd_ = fd.value();
    SetNonBlocking(tcp_listen_fd_);
  }

  const std::uint64_t slow_ns =
      options_.slow_ms > 0.0
          ? static_cast<std::uint64_t>(options_.slow_ms * 1e6)
          : 0;
  threads_.reserve(static_cast<std::size_t>(options_.io_threads));
  for (int i = 0; i < options_.io_threads; ++i) {
    threads_.push_back(std::make_unique<IoThread>(
        this, router_, options_.max_outbuf_bytes, i, slow_ns));
    const Status init = threads_.back()->Init();
    if (!init.ok()) {
      threads_.clear();
      if (unix_listen_fd_ >= 0) {
        ::close(unix_listen_fd_);
        unix_listen_fd_ = -1;
      }
      if (tcp_listen_fd_ >= 0) {
        ::close(tcp_listen_fd_);
        tcp_listen_fd_ = -1;
      }
      return init;
    }
  }
  // Listeners live on thread 0; accepted fds are dealt round-robin.
  if (unix_listen_fd_ >= 0) {
    threads_[0]->AddListener(unix_listen_fd_, kUnixListenerTag);
  }
  if (tcp_listen_fd_ >= 0) {
    threads_[0]->AddListener(tcp_listen_fd_, kTcpListenerTag);
  }
  for (auto& thread : threads_) {
    thread->Start();
  }
  started_ = true;
  return Status::Ok();
}

void EventLoop::Stop() {
  if (stopped_ || !started_) {
    stopped_ = true;
    return;
  }
  stopped_ = true;
  for (auto& thread : threads_) {
    thread->RequestStop();
  }
  for (auto& thread : threads_) {
    thread->Join();
  }
  if (unix_listen_fd_ >= 0) {
    ::close(unix_listen_fd_);
    ::unlink(options_.unix_path.c_str());
    unix_listen_fd_ = -1;
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
}

}  // namespace lyra::svc
