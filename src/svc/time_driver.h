// Time drivers: how the online scheduler service maps wall-clock time onto
// the engine's virtual clock.
//
// The service's engine thread asks its driver two questions: "what virtual
// time is it?" (commands are stamped with it) and "wait until virtual time t"
// (the gap until the next discrete event). Two implementations:
//   - VirtualTimeDriver: as-fast-as-possible. WaitUntil jumps the clock and
//     returns immediately, so a drain runs at full simulation speed and the
//     served decisions are bit-identical to a batch run of the same command
//     sequence (the warm-restart tests rely on this).
//   - ScaledRealTimeDriver: virtual time advances at `speedup` times the wall
//     clock. WaitUntil sleeps on a condition variable and is interruptible,
//     so a newly arrived command wakes the engine thread immediately instead
//     of waiting out the sleep.
#ifndef SRC_SVC_TIME_DRIVER_H_
#define SRC_SVC_TIME_DRIVER_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/types.h"

namespace lyra::svc {

class TimeDriver {
 public:
  virtual ~TimeDriver() = default;

  // Current virtual time in seconds. Monotone non-decreasing.
  virtual TimeSec Now() = 0;

  // Blocks until virtual time reaches `target` or Interrupt() is called.
  // Returns true when the target was reached, false when interrupted early.
  virtual bool WaitUntil(TimeSec target) = 0;

  // Wakes a blocked WaitUntil (no-op when none is blocked). Thread-safe.
  virtual void Interrupt() {}

  // Tells the driver the engine frontier moved (the virtual driver follows
  // it; the real-time driver follows the wall clock and ignores this).
  virtual void AdvanceTo(TimeSec /*t*/) {}

  // True when WaitUntil actually sleeps (the service's engine loop waits on
  // the driver between events instead of free-running).
  virtual bool realtime() const { return false; }

  virtual const char* name() const = 0;
};

// Virtual time: the clock is wherever the engine says it is. WaitUntil never
// blocks, which makes the service run as fast as the simulation core can.
class VirtualTimeDriver : public TimeDriver {
 public:
  TimeSec Now() override;
  bool WaitUntil(TimeSec target) override;
  void AdvanceTo(TimeSec t) override;
  const char* name() const override { return "virtual"; }

 private:
  std::mutex mu_;
  TimeSec now_ = 0.0;
};

// Wall-clock time scaled by `speedup` (1.0 = real time, 60.0 = one virtual
// minute per wall second). The epoch is captured at construction.
class ScaledRealTimeDriver : public TimeDriver {
 public:
  explicit ScaledRealTimeDriver(double speedup);

  TimeSec Now() override;
  bool WaitUntil(TimeSec target) override;
  void Interrupt() override;
  bool realtime() const override { return true; }
  const char* name() const override { return "scaled-realtime"; }

  double speedup() const { return speedup_; }

 private:
  std::chrono::steady_clock::time_point WallFor(TimeSec virtual_time) const;

  const double speedup_;
  const std::chrono::steady_clock::time_point epoch_;
  std::mutex mu_;
  std::condition_variable cv_;
  // Level-triggered wake: set by Interrupt, consumed by WaitUntil. An
  // interrupt that lands between two waits is caught by the next one, so a
  // command enqueued while the engine is applying work is never missed.
  bool wake_pending_ = false;
};

}  // namespace lyra::svc

#endif  // SRC_SVC_TIME_DRIVER_H_
