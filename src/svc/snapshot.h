// Versioned binary snapshot of the online scheduler service (DESIGN.md §8).
//
// A snapshot is *logical*, not a memory image: it stores the EngineConfig and
// the ordered log of mutating commands (submit / cancel / advance / drain),
// each stamped with the virtual time it was applied at, plus the engine's
// position (horizon) when the snapshot was taken. Restore rebuilds the engine
// from the config and replays the log — StepUntil(stamp) then re-apply, the
// exact discipline the live service uses — then steps to the horizon. Because
// the engine is seed-deterministic and StepUntil chunk boundaries never change
// behaviour, the restored service's decision log and fault-log hash are
// byte-identical to an uninterrupted run's (ctest-enforced).
//
// File layout (all integers little-endian, doubles as IEEE-754 bit patterns):
//   magic  "LYRASNAP" (8 bytes)
//   u32    version (currently 1; any other value is rejected)
//   u64    payload size
//   bytes  payload: EngineConfig, command count, commands, horizon
//   u64    FNV-1a hash of the payload (integrity gate)
#ifndef SRC_SVC_SNAPSHOT_H_
#define SRC_SVC_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/svc/registry.h"
#include "src/workload/job.h"

namespace lyra::svc {

// v2 added EngineConfig::policy_weights (the learned scheduler's LYRAPOL
// path). Decoding is strict: any other version is rejected, not migrated.
inline constexpr std::uint32_t kSnapshotVersion = 2;

enum class CommandKind : std::uint8_t {
  kSubmit = 1,
  kCancel = 2,
  kAdvance = 3,  // explicit StepUntil(stamp)
  kDrain = 4,    // run to quiescence
};

const char* CommandKindName(CommandKind kind);

// One mutating command, as replayed on restore. `stamp` is the virtual time
// the command was applied at (the engine steps to it before re-applying).
struct LoggedCommand {
  CommandKind kind = CommandKind::kSubmit;
  TimeSec stamp = 0.0;
  JobSpec spec;            // kSubmit only (id is reassigned on replay)
  std::int64_t job = -1;   // kCancel only

  friend bool operator==(const LoggedCommand&, const LoggedCommand&) = default;
};

struct ServiceSnapshot {
  EngineConfig config;
  std::vector<LoggedCommand> commands;
  // Engine position when the snapshot was taken; restore steps here after
  // the replay so the service resumes exactly where it left off.
  TimeSec horizon = 0.0;
};

Status SaveSnapshot(const ServiceSnapshot& snapshot, const std::string& path);

// InvalidArgument on bad magic or an unsupported version, DataLoss on a
// truncated file or checksum mismatch.
StatusOr<ServiceSnapshot> LoadSnapshot(const std::string& path);

// String-level codec for the exact LYRASNAP file image (magic + version +
// payload + checksum). SaveSnapshot == EncodeSnapshot + atomic file write;
// LoadSnapshot == file read + DecodeSnapshot. Exposed so the multi-shard
// container below can carry each shard's image byte-for-byte, and so tests
// can round-trip snapshots without touching the filesystem. `origin` only
// flavors error messages (a path or a "shard k" tag).
std::string EncodeSnapshot(const ServiceSnapshot& snapshot);
StatusOr<ServiceSnapshot> DecodeSnapshot(const std::string& image,
                                         const std::string& origin);

// Multi-shard snapshot container (DESIGN.md §10). Wraps N complete LYRASNAP
// images — one per engine shard, stored byte-identically — plus the front
// end's submit-routing sequence number, so a warm restart resumes routing
// keyless submits to the same shards an uninterrupted run would have.
//
// File layout mirrors LYRASNAP:
//   magic  "LYRASHRD" (8 bytes)
//   u32    version (currently 1)
//   u64    payload size
//   bytes  payload: u32 shard count, u64 submit_seq,
//                   then per shard: u64 image size + LYRASNAP image bytes
//   u64    FNV-1a hash of the payload
inline constexpr std::uint32_t kMultiSnapshotVersion = 1;

struct MultiSnapshot {
  std::uint64_t submit_seq = 0;
  std::vector<std::string> shard_images;  // one LYRASNAP file image per shard
};

// One shard degrades to a plain LYRASNAP file (bit-identical with what the
// unsharded service writes); two or more get the LYRASHRD envelope.
Status SaveMultiSnapshot(const MultiSnapshot& snapshot, const std::string& path);

// Accepts both formats: a plain LYRASNAP file loads as a one-shard
// MultiSnapshot with submit_seq 0. Error classes match LoadSnapshot.
StatusOr<MultiSnapshot> LoadMultiSnapshot(const std::string& path);

// String-level codec for the multi-shard container, mirroring
// EncodeSnapshot/DecodeSnapshot: EncodeMultiSnapshot returns the exact bytes
// SaveMultiSnapshot would write (a plain LYRASNAP image at one shard, the
// LYRASHRD envelope otherwise); DecodeMultiSnapshot accepts both. Exposed so
// the federation container below can nest per-cluster images byte-for-byte.
std::string EncodeMultiSnapshot(const MultiSnapshot& snapshot);
StatusOr<MultiSnapshot> DecodeMultiSnapshot(const std::string& image,
                                            const std::string& origin);

// Federation snapshot container (DESIGN.md §11). Wraps one complete
// LYRASHRD/LYRASNAP image per cluster — stored byte-identically, so each
// cluster warm-restarts exactly as a standalone fleet would — plus the
// federation front end's submit-routing sequence number and the loan
// broker's ledger (active loans + rolling event hash), so a restart resumes
// routing, granting, and reclaiming exactly where the killed process was.
//
// File layout mirrors LYRASNAP/LYRASHRD:
//   magic  "LYRAFED_" (8 bytes)
//   u32    version (currently 1)
//   u64    payload size
//   bytes  payload: u64 submit_seq, broker ledger, u32 cluster count,
//                   then per cluster: name, u8 kind, i64 loan_priority,
//                   u32 shards, u64 image size + image bytes
//   u64    FNV-1a hash of the payload
inline constexpr std::uint32_t kFedSnapshotVersion = 1;

// One outstanding cross-cluster loan, as carried in the broker ledger.
struct FedLoan {
  std::uint64_t id = 0;
  std::uint32_t lender = 0;    // inference cluster index
  std::uint32_t borrower = 0;  // training cluster index
  std::int64_t gpus = 0;
  double granted_at = 0.0;

  friend bool operator==(const FedLoan&, const FedLoan&) = default;
};

// Broker ledger totals + active loans; ledger_hash is the rolling FNV-1a of
// every event line the broker ever emitted (the byte-identity witness).
struct FedLedger {
  std::uint64_t next_loan_id = 0;
  std::uint64_t total_granted = 0;
  std::uint64_t total_reclaimed = 0;
  std::uint64_t total_returned = 0;
  std::uint64_t ledger_hash = 0;
  std::vector<FedLoan> loans;

  friend bool operator==(const FedLedger&, const FedLedger&) = default;
};

struct FedClusterImage {
  std::string name;
  std::uint8_t kind = 0;  // ClusterKind as a byte (0 inference, 1 training)
  std::int64_t loan_priority = 0;
  std::uint32_t shards = 1;
  std::string image;  // complete LYRASHRD/LYRASNAP file image
};

struct FedSnapshot {
  std::uint64_t submit_seq = 0;
  FedLedger ledger;
  std::vector<FedClusterImage> clusters;
};

Status SaveFedSnapshot(const FedSnapshot& snapshot, const std::string& path);
StatusOr<FedSnapshot> LoadFedSnapshot(const std::string& path);
std::string EncodeFedSnapshot(const FedSnapshot& snapshot);
StatusOr<FedSnapshot> DecodeFedSnapshot(const std::string& image,
                                        const std::string& origin);

}  // namespace lyra::svc

#endif  // SRC_SVC_SNAPSHOT_H_
