// Reply-document helpers shared by the service core (engine-side command
// handlers) and the event loop (connection-side parse/overload errors). Every
// reply is an object with "ok" plus either result fields or "code"/"error".
#ifndef SRC_SVC_REPLIES_H_
#define SRC_SVC_REPLIES_H_

#include <string>

#include "src/common/json.h"
#include "src/common/status.h"

namespace lyra::svc {

inline const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDataLoss:
      return "data_loss";
  }
  return "unknown";
}

inline JsonValue ErrorReply(const char* code, const std::string& message) {
  JsonValue reply = JsonValue::MakeObject();
  reply.Set("ok", JsonValue::MakeBool(false));
  reply.Set("code", JsonValue::MakeString(code));
  reply.Set("error", JsonValue::MakeString(message));
  return reply;
}

inline JsonValue StatusReply(const Status& status) {
  return ErrorReply(CodeName(status.code()), status.message());
}

inline JsonValue OkReply() {
  JsonValue reply = JsonValue::MakeObject();
  reply.Set("ok", JsonValue::MakeBool(true));
  return reply;
}

// Copies a numeric "seq" field from `request` into `reply`, so pipelining
// clients can assert per-connection reply order without parsing result
// fields. Replies without a requesting "seq" are unchanged.
inline void EchoSeq(const JsonValue& request, JsonValue& reply) {
  const JsonValue* seq = request.Find("seq");
  if (seq != nullptr && seq->is_number()) {
    reply.Set("seq", JsonValue::MakeNumber(seq->AsDouble()));
  }
}

}  // namespace lyra::svc

#endif  // SRC_SVC_REPLIES_H_
