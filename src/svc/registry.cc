#include "src/svc/registry.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/types.h"
#include "src/lyra/lyra_scheduler.h"
#include "src/predict/lstm.h"
#include "src/rl/learned_scheduler.h"
#include "src/rl/policy.h"
#include "src/sched/afs.h"
#include "src/sched/fifo.h"
#include "src/sched/gandiva.h"
#include "src/sched/opportunistic.h"
#include "src/sched/pollux.h"
#include "src/sim/inference_cluster.h"
#include "src/workload/trace.h"

namespace lyra::svc {
namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) {
      out += ", ";
    }
    out += name;
  }
  return out;
}

Status UnknownComponent(const std::string& kind, const std::string& name,
                        const std::vector<std::string>& known) {
  return Status::InvalidArgument("unknown " + kind + ": \"" + name +
                                 "\" (known: " + JoinNames(known) + ")");
}

}  // namespace

const std::vector<std::string>& KnownSchedulerNames() {
  static const std::vector<std::string> names = {
      "afs",   "fifo",          "gandiva", "learned",
      "lyra",  "opportunistic", "pollux",  "sjf"};
  return names;
}

const std::vector<std::string>& KnownReclaimNames() {
  static const std::vector<std::string> names = {"lyra", "optimal", "random", "scf"};
  return names;
}

const std::vector<std::string>& KnownPredictorNames() {
  static const std::vector<std::string> names = {"last-value", "lstm",
                                                 "seasonal-naive"};
  return names;
}

StatusOr<std::unique_ptr<JobScheduler>> MakeScheduler(
    const std::string& name, bool info_agnostic, bool tuned,
    const std::string& policy_weights) {
  if (name == "fifo") {
    return std::unique_ptr<JobScheduler>(std::make_unique<FifoScheduler>());
  }
  if (name == "sjf") {
    return std::unique_ptr<JobScheduler>(std::make_unique<SjfScheduler>());
  }
  if (name == "gandiva") {
    return std::unique_ptr<JobScheduler>(std::make_unique<GandivaScheduler>());
  }
  if (name == "afs") {
    return std::unique_ptr<JobScheduler>(std::make_unique<AfsScheduler>());
  }
  if (name == "pollux") {
    return std::unique_ptr<JobScheduler>(std::make_unique<PolluxScheduler>());
  }
  if (name == "opportunistic") {
    return std::unique_ptr<JobScheduler>(std::make_unique<OpportunisticScheduler>());
  }
  if (name == "lyra") {
    LyraSchedulerOptions options;
    options.information_agnostic = info_agnostic;
    options.tuned_jobs = tuned;
    return std::unique_ptr<JobScheduler>(std::make_unique<LyraScheduler>(options));
  }
  if (name == "learned") {
    if (policy_weights.empty()) {
      return Status::InvalidArgument(
          "scheduler \"learned\" requires --policy-weights=<LYRAPOL file> "
          "(train one with lyra_train)");
    }
    StatusOr<rl::PolicyNet> policy = rl::PolicyNet::Load(policy_weights);
    if (!policy.ok()) {
      return policy.status();
    }
    return std::unique_ptr<JobScheduler>(
        std::make_unique<rl::LearnedScheduler>(std::move(policy.value())));
  }
  return UnknownComponent("scheduler", name, KnownSchedulerNames());
}

StatusOr<std::unique_ptr<ReclaimPolicy>> MakeReclaim(const std::string& name) {
  if (name == "lyra") {
    return std::unique_ptr<ReclaimPolicy>(std::make_unique<LyraReclaimPolicy>());
  }
  if (name == "random") {
    return std::unique_ptr<ReclaimPolicy>(std::make_unique<RandomReclaimPolicy>());
  }
  if (name == "scf") {
    return std::unique_ptr<ReclaimPolicy>(std::make_unique<ScfReclaimPolicy>());
  }
  if (name == "optimal") {
    return std::unique_ptr<ReclaimPolicy>(std::make_unique<OptimalReclaimPolicy>());
  }
  return UnknownComponent("reclaim policy", name, KnownReclaimNames());
}

StatusOr<std::unique_ptr<UsagePredictor>> MakePredictor(const std::string& name) {
  if (name == "seasonal-naive") {
    return std::unique_ptr<UsagePredictor>(std::make_unique<SeasonalNaivePredictor>());
  }
  if (name == "lstm") {
    return std::unique_ptr<UsagePredictor>(std::make_unique<LstmPredictor>());
  }
  if (name == "last-value") {
    return std::unique_ptr<UsagePredictor>(std::make_unique<LastValuePredictor>());
  }
  return UnknownComponent("usage predictor", name, KnownPredictorNames());
}

std::unique_ptr<JobScheduler> MakeSchedulerByName(const std::string& name,
                                                  bool info_agnostic, bool tuned) {
  StatusOr<std::unique_ptr<JobScheduler>> made =
      MakeScheduler(name, info_agnostic, tuned);
  return made.ok() ? std::move(made.value()) : nullptr;
}

std::unique_ptr<ReclaimPolicy> MakeReclaimByName(const std::string& name) {
  StatusOr<std::unique_ptr<ReclaimPolicy>> made = MakeReclaim(name);
  return made.ok() ? std::move(made.value()) : nullptr;
}

std::unique_ptr<UsagePredictor> MakeUsagePredictor(bool lstm) {
  if (lstm) {
    return std::make_unique<LstmPredictor>();
  }
  return std::make_unique<SeasonalNaivePredictor>();
}

StatusOr<Engine> BuildEngine(const EngineConfig& config,
                             const std::string& trace_path) {
  if (!(config.scale > 0.0) || !std::isfinite(config.scale)) {
    return Status::InvalidArgument("scale must be positive");
  }
  if (!(config.horizon_days > 0.0) || !std::isfinite(config.horizon_days)) {
    return Status::InvalidArgument("horizon_days must be positive");
  }
  Engine engine;
  StatusOr<std::unique_ptr<JobScheduler>> scheduler = MakeScheduler(
      config.scheduler, config.info_agnostic, config.tuned, config.policy_weights);
  if (!scheduler.ok()) {
    return scheduler.status();
  }
  engine.scheduler = std::move(scheduler.value());
  StatusOr<std::unique_ptr<ReclaimPolicy>> reclaim = MakeReclaim(config.reclaim);
  if (!reclaim.ok()) {
    return reclaim.status();
  }
  engine.reclaim = std::move(reclaim.value());

  const int training_servers = std::max(1, static_cast<int>(443 * config.scale));
  const int inference_servers = std::max(1, static_cast<int>(520 * config.scale));

  // Online serving starts from an empty trace: jobs arrive only through
  // SubmitJob. The duration sets the usage-metering window and (plus the
  // standard 7-day drain) the engine's max_time.
  Trace trace;
  trace.duration = config.horizon_days * kDay;

  DiurnalTrafficOptions traffic;
  traffic.duration = trace.duration + 8 * kDay;
  traffic.seed = config.seed ^ 0x7aff1c;
  InferenceClusterOptions inference_options;
  inference_options.num_servers = inference_servers;
  auto inference = std::make_unique<InferenceCluster>(
      inference_options, DiurnalTrafficModel(traffic),
      MakeUsagePredictor(config.lstm));

  SimulatorOptions options;
  options.training_servers = training_servers;
  options.enable_loaning = config.loaning;
  options.seed = config.seed;
  // The decision log is the service's replay-equality artifact (DESIGN.md
  // §8); always record it.
  options.record_decisions = true;
  options.trace_path = trace_path;
  if (config.faults) {
    options.faults.enabled = true;
    options.faults.seed = config.seed ^ 0xfa17;
    options.faults.server_mtbf = 12 * kHour;
    options.faults.worker_mtbf = 6 * kHour;
    options.faults.storm_mtbf = 2 * kDay;
    options.faults.straggler_mtbf = 8 * kHour;
  }
  engine.sim = std::make_unique<Simulator>(options, trace, engine.scheduler.get(),
                                           engine.reclaim.get(), std::move(inference));
  return engine;
}

}  // namespace lyra::svc
