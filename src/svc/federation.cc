#include "src/svc/federation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/svc/registry.h"
#include "src/svc/replies.h"

namespace lyra::svc {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Deterministic time/cost rendering for ledger event lines: the lines feed
// the rolling ledger hash, so the format must be stable across platforms.
std::string FormatTime(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", t);
  return buf;
}

bool ValidClusterName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

bool ParseKindToken(const std::string& token, ClusterKind* kind) {
  if (token == "inference" || token == "inf") {
    *kind = ClusterKind::kInference;
    return true;
  }
  if (token == "training" || token == "train") {
    *kind = ClusterKind::kTraining;
    return true;
  }
  return false;
}

bool ParseUint(const std::string& text, long long* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value < 0) {
    return false;
  }
  *out = value;
  return true;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

// How a "cluster"/"to" field renders in error messages.
std::string DescribeTarget(const JsonValue& target) {
  if (target.is_string()) {
    return target.AsString();
  }
  if (target.is_number()) {
    return std::to_string(target.AsInt());
  }
  return "?";
}

// Same integer arithmetic everywhere: ceil(kReserveFraction * total) without
// floating point, so the reserve is identical across platforms.
std::int64_t ReserveOf(std::int64_t total_gpus) {
  return (total_gpus + 9) / 10;
}

std::uint64_t HashSeq(std::uint64_t seq) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((seq >> (8 * i)) & 0xff);
  }
  return ShardRouter::Hash(bytes, sizeof(bytes));
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    bytes.append(buf, n);
  }
  const bool read_error = std::ferror(in) != 0;
  std::fclose(in);
  if (read_error) {
    return Status::DataLoss("read error: " + path);
  }
  return bytes;
}

const char* JobStateLabel(int state) {
  switch (state) {
    case 0:
      return "pending";
    case 1:
      return "running";
    case 2:
      return "finished";
    default:
      return "cancelled";
  }
}

}  // namespace

const char* ClusterKindName(ClusterKind kind) {
  return kind == ClusterKind::kInference ? "inference" : "training";
}

StatusOr<std::vector<ClusterSpec>> ParseFederationSpec(
    const std::string& spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("empty federation spec");
  }

  // Compact form first: "NxM" or "NxM@S".
  const std::size_t x = spec.find('x');
  if (x != std::string::npos && spec.find(',') == std::string::npos &&
      spec.find(':') == std::string::npos) {
    const std::size_t at = spec.find('@');
    long long inference = 0, training = 0, shards = 1;
    const std::string training_text =
        at == std::string::npos ? spec.substr(x + 1)
                                : spec.substr(x + 1, at - x - 1);
    if (!ParseUint(spec.substr(0, x), &inference) ||
        !ParseUint(training_text, &training) ||
        (at != std::string::npos &&
         !ParseUint(spec.substr(at + 1), &shards))) {
      return Status::InvalidArgument("bad federation spec: \"" + spec + "\"");
    }
    if (inference + training < 1) {
      return Status::InvalidArgument("federation needs at least one cluster");
    }
    if (shards < 1 || shards > 64) {
      return Status::InvalidArgument(
          "cluster shard count must be in [1, 64], got " +
          std::to_string(shards));
    }
    std::vector<ClusterSpec> clusters;
    for (long long i = 0; i < inference; ++i) {
      ClusterSpec cluster;
      cluster.name = "inf" + std::to_string(i);
      cluster.kind = ClusterKind::kInference;
      cluster.shards = static_cast<int>(shards);
      clusters.push_back(std::move(cluster));
    }
    for (long long i = 0; i < training; ++i) {
      ClusterSpec cluster;
      cluster.name = "train" + std::to_string(i);
      cluster.kind = ClusterKind::kTraining;
      cluster.shards = static_cast<int>(shards);
      clusters.push_back(std::move(cluster));
    }
    return clusters;
  }

  // Explicit list: "name:kind[:shards[:prio]],...".
  std::vector<ClusterSpec> clusters;
  for (const std::string& entry : SplitOn(spec, ',')) {
    const std::vector<std::string> fields = SplitOn(entry, ':');
    if (fields.size() < 2 || fields.size() > 4) {
      return Status::InvalidArgument("bad federation cluster: \"" + entry +
                                     "\"");
    }
    ClusterSpec cluster;
    cluster.name = fields[0];
    if (!ValidClusterName(cluster.name)) {
      return Status::InvalidArgument("bad cluster name: \"" + fields[0] +
                                     "\"");
    }
    if (!ParseKindToken(fields[1], &cluster.kind)) {
      return Status::InvalidArgument("unknown cluster kind: \"" + fields[1] +
                                     "\"");
    }
    if (fields.size() >= 3) {
      long long shards = 0;
      if (!ParseUint(fields[2], &shards) || shards < 1 || shards > 64) {
        return Status::InvalidArgument("bad cluster shard count: \"" +
                                       fields[2] + "\"");
      }
      cluster.shards = static_cast<int>(shards);
    }
    if (fields.size() == 4) {
      char* end = nullptr;
      const long long priority = std::strtoll(fields[3].c_str(), &end, 10);
      if (fields[3].empty() || end == nullptr || *end != '\0') {
        return Status::InvalidArgument("bad cluster loan priority: \"" +
                                       fields[3] + "\"");
      }
      cluster.loan_priority = static_cast<int>(priority);
    }
    for (const ClusterSpec& existing : clusters) {
      if (existing.name == cluster.name) {
        return Status::InvalidArgument("duplicate cluster name: \"" +
                                       cluster.name + "\"");
      }
    }
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

// --- LoanBroker -----------------------------------------------------------

void LoanBroker::Emit(const std::string& event) {
  std::uint64_t hash =
      ledger_.ledger_hash == 0 ? kFnvOffset : ledger_.ledger_hash;
  for (const char c : event) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  hash ^= static_cast<unsigned char>('\n');
  hash *= kFnvPrime;
  ledger_.ledger_hash = hash;
  events_.push_back(event);
  if (events_.size() > kMaxEvents) {
    events_.erase(events_.begin());
  }
}

void LoanBroker::Grant(double now, std::uint32_t lender,
                       std::uint32_t borrower, std::int64_t gpus) {
  FedLoan loan;
  loan.id = ledger_.next_loan_id++;
  loan.lender = lender;
  loan.borrower = borrower;
  loan.gpus = gpus;
  loan.granted_at = now;
  ledger_.loans.push_back(loan);
  ledger_.total_granted += static_cast<std::uint64_t>(gpus);
  Emit("t=" + FormatTime(now) + " grant id=" + std::to_string(loan.id) +
       " lender=" + std::to_string(lender) +
       " borrower=" + std::to_string(borrower) +
       " gpus=" + std::to_string(gpus));
}

void LoanBroker::EndLoan(double now, const char* verb, std::size_t index) {
  const FedLoan loan = ledger_.loans[index];
  ledger_.loans.erase(ledger_.loans.begin() +
                      static_cast<std::ptrdiff_t>(index));
  if (std::strcmp(verb, "reclaim") == 0) {
    ledger_.total_reclaimed += static_cast<std::uint64_t>(loan.gpus);
  } else {
    ledger_.total_returned += static_cast<std::uint64_t>(loan.gpus);
  }
  Emit("t=" + FormatTime(now) + " " + verb + " id=" + std::to_string(loan.id) +
       " lender=" + std::to_string(loan.lender) +
       " borrower=" + std::to_string(loan.borrower) +
       " gpus=" + std::to_string(loan.gpus));
}

std::int64_t LoanBroker::LoanedBy(std::uint32_t cluster) const {
  std::int64_t total = 0;
  for (const FedLoan& loan : ledger_.loans) {
    if (loan.lender == cluster) {
      total += loan.gpus;
    }
  }
  return total;
}

std::int64_t LoanBroker::BorrowedBy(std::uint32_t cluster) const {
  std::int64_t total = 0;
  for (const FedLoan& loan : ledger_.loans) {
    if (loan.borrower == cluster) {
      total += loan.gpus;
    }
  }
  return total;
}

Status LoanBroker::ConfigurePredictor(const std::string& name) {
  if (name.empty()) {
    predictor_name_.clear();
    predictors_.clear();
    return Status::Ok();
  }
  // Validate eagerly so a typo fails at configure time, not at the first
  // barrier evaluation.
  StatusOr<std::unique_ptr<UsagePredictor>> probe = MakePredictor(name);
  if (!probe.ok()) {
    return probe.status();
  }
  predictor_name_ = name;
  predictors_.clear();
  return Status::Ok();
}

std::int64_t LoanBroker::PredictedDemand(std::uint32_t cluster,
                                         std::int64_t pending) {
  if (predictor_name_.empty()) {
    return pending;
  }
  if (predictors_.size() <= cluster) {
    predictors_.resize(cluster + 1);
  }
  if (predictors_[cluster] == nullptr) {
    StatusOr<std::unique_ptr<UsagePredictor>> made =
        MakePredictor(predictor_name_);
    predictors_[cluster] = std::move(made.value());
  }
  UsagePredictor& predictor = *predictors_[cluster];
  predictor.Observe(
      std::min(1.0, static_cast<double>(pending) / kDemandScale));
  const double predicted = predictor.PredictNext();
  return std::max<std::int64_t>(
      0, static_cast<std::int64_t>(std::ceil(predicted * kDemandScale)));
}

void LoanBroker::Evaluate(double now,
                          const std::vector<ClusterSignal>& signals) {
  // Training demand is approximated as one GPU per pending job (the engine's
  // min_workers/gpus_per_worker default); the signal is already a sum over
  // the cluster's engines.

  // 1. Returns: a borrower gives back its newest loans that are entirely
  // surplus — even without the loan, what it still borrows covers demand.
  for (std::uint32_t b = 0; b < signals.size(); ++b) {
    if (signals[b].kind != ClusterKind::kTraining) {
      continue;
    }
    for (std::size_t i = ledger_.loans.size(); i-- > 0;) {
      const FedLoan& loan = ledger_.loans[i];
      if (loan.borrower != b) {
        continue;
      }
      if (BorrowedBy(b) - loan.gpus >= signals[b].pending_jobs) {
        EndLoan(now, "return", i);
      }
    }
  }

  // 2. Reclaims: a lender whose idle pool no longer covers its reserve plus
  // what it has pledged pulls loans back, newest first (LIFO keeps the
  // longest-running borrowed jobs undisturbed).
  for (std::uint32_t l = 0; l < signals.size(); ++l) {
    if (signals[l].kind != ClusterKind::kInference) {
      continue;
    }
    const std::int64_t reserve = ReserveOf(signals[l].total_gpus);
    while (signals[l].free_gpus - LoanedBy(l) < reserve) {
      std::size_t newest = ledger_.loans.size();
      for (std::size_t i = ledger_.loans.size(); i-- > 0;) {
        if (ledger_.loans[i].lender == l) {
          newest = i;
          break;
        }
      }
      if (newest == ledger_.loans.size()) {
        break;
      }
      EndLoan(now, "reclaim", newest);
    }
  }

  // 3. Grants: leftover demand against lendable capacity, both sides in
  // descending loan priority (ties broken by cluster index).
  std::vector<std::uint32_t> borrowers, lenders;
  for (std::uint32_t c = 0; c < signals.size(); ++c) {
    if (signals[c].kind == ClusterKind::kTraining) {
      borrowers.push_back(c);
    } else {
      lenders.push_back(c);
    }
  }
  const auto by_priority = [&signals](std::uint32_t x, std::uint32_t y) {
    if (signals[x].loan_priority != signals[y].loan_priority) {
      return signals[x].loan_priority > signals[y].loan_priority;
    }
    return x < y;
  };
  std::sort(borrowers.begin(), borrowers.end(), by_priority);
  std::sort(lenders.begin(), lenders.end(), by_priority);
  for (const std::uint32_t b : borrowers) {
    std::int64_t demand =
        PredictedDemand(b, signals[b].pending_jobs) - BorrowedBy(b);
    for (const std::uint32_t l : lenders) {
      if (demand <= 0) {
        break;
      }
      const std::int64_t lendable = signals[l].free_gpus -
                                    ReserveOf(signals[l].total_gpus) -
                                    LoanedBy(l);
      const std::int64_t gpus = std::min(demand, lendable);
      if (gpus > 0) {
        Grant(now, l, b, gpus);
        demand -= gpus;
      }
    }
  }
}

void LoanBroker::Reconcile(double now, std::size_t clusters) {
  for (std::size_t i = ledger_.loans.size(); i-- > 0;) {
    const FedLoan& loan = ledger_.loans[i];
    if (loan.lender >= clusters || loan.borrower >= clusters) {
      EndLoan(now, "drop", i);
    }
  }
}

void LoanBroker::RecordMigration(double now, std::int64_t from_job,
                                 std::int64_t to_job,
                                 std::uint32_t from_cluster,
                                 std::uint32_t to_cluster,
                                 double checkpoint_cost) {
  Emit("t=" + FormatTime(now) + " migrate job=" + std::to_string(from_job) +
       " to_job=" + std::to_string(to_job) +
       " from=" + std::to_string(from_cluster) +
       " to=" + std::to_string(to_cluster) +
       " cost=" + FormatTime(checkpoint_cost));
}

// --- FederationRouter -----------------------------------------------------

// Two-hop migration chain: cancel on the source engine, then resubmit on the
// destination engine with the remaining work plus the checkpoint cost. Each
// hop's reply arrives on that engine's thread; `a` carries the phase.
class FederationRouter::MigrationSink
    : public SchedulerService::CompletionSink,
      public std::enable_shared_from_this<MigrationSink> {
 public:
  MigrationSink(FederationRouter* router, JsonValue original,
                std::shared_ptr<SchedulerService::CompletionSink> parent,
                std::uint64_t a, std::uint64_t b, std::int64_t from_global,
                std::uint32_t source_engine, std::uint32_t dest_engine,
                std::uint32_t dest_cluster, std::uint32_t source_cluster,
                JsonValue submit, double checkpoint_cost)
      : router_(router),
        original_(std::move(original)),
        parent_(std::move(parent)),
        a_(a),
        b_(b),
        from_global_(from_global),
        source_engine_(source_engine),
        dest_engine_(dest_engine),
        dest_cluster_(dest_cluster),
        source_cluster_(source_cluster),
        submit_(std::move(submit)),
        checkpoint_cost_(checkpoint_cost) {}

  void OnReply(std::uint64_t phase, std::uint64_t /*unused*/,
               JsonValue reply) override {
    if (!reply.GetBool("ok", false)) {
      if (phase == 0) {
        // The cancel's not_found names the shard-local id.
        router_->RewriteReplyJob(source_engine_, reply);
      }
      EchoSeq(original_, reply);
      parent_->OnReply(a_, b_, std::move(reply));
      return;
    }
    if (phase == 0) {
      // The job left the source at the cancel's engine time; it arrives at
      // the destination no earlier (dest StampFor still maxes with its own
      // frontier).
      submit_.Replace("at",
                      JsonValue::MakeNumber(reply.GetDouble("time", 0.0)));
      router_->shard(static_cast<int>(dest_engine_))
          ->ExecuteAsync(std::move(submit_), shared_from_this(), 1, 0,
                         SchedulerService::CmdClass::kEngine);
      return;
    }
    const std::int64_t local =
        static_cast<std::int64_t>(reply.GetDouble("job", -1.0));
    const std::int64_t to_global = router_->ToGlobal(local, dest_engine_);
    const double time = reply.GetDouble("time", 0.0);
    {
      std::lock_guard<std::mutex> lock(router_->broker_mu_);
      router_->broker_.RecordMigration(time, from_global_, to_global,
                                       source_cluster_, dest_cluster_,
                                       checkpoint_cost_);
    }
    JsonValue done = OkReply();
    done.Set("job", JsonValue::MakeNumber(static_cast<double>(to_global)));
    done.Set("from_job",
             JsonValue::MakeNumber(static_cast<double>(from_global_)));
    done.Set("cluster", JsonValue::MakeString(
                            router_->clusters_[dest_cluster_].name));
    done.Set("checkpoint_cost", JsonValue::MakeNumber(checkpoint_cost_));
    done.Set("time", JsonValue::MakeNumber(time));
    EchoSeq(original_, done);
    parent_->OnReply(a_, b_, std::move(done));
  }

 private:
  FederationRouter* const router_;
  const JsonValue original_;
  const std::shared_ptr<SchedulerService::CompletionSink> parent_;
  const std::uint64_t a_;
  const std::uint64_t b_;
  const std::int64_t from_global_;
  const std::uint32_t source_engine_;
  const std::uint32_t dest_engine_;
  const std::uint32_t dest_cluster_;
  const std::uint32_t source_cluster_;
  JsonValue submit_;
  const double checkpoint_cost_;
};

FederationRouter::FederationRouter(std::vector<SchedulerService*> engines,
                                   std::vector<ClusterSpec> clusters)
    : ShardRouter(std::move(engines)), clusters_(std::move(clusters)) {
  LYRA_CHECK(!clusters_.empty());
  int next = 0;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    const ClusterSpec& spec = clusters_[c];
    LYRA_CHECK(spec.shards >= 1);
    first_engine_.push_back(next);
    std::vector<std::uint32_t> range;
    for (int s = 0; s < spec.shards; ++s) {
      const auto engine = static_cast<std::uint32_t>(next++);
      range.push_back(engine);
      engine_cluster_.push_back(static_cast<std::uint32_t>(c));
      kind_engines_[static_cast<int>(spec.kind)].push_back(engine);
    }
    cluster_engines_.push_back(std::move(range));
  }
  LYRA_CHECK(next == shard_count());
}

int FederationRouter::FindCluster(const std::string& name) const {
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    if (clusters_[c].name == name) {
      return static_cast<int>(c);
    }
  }
  return -1;
}

Status FederationRouter::ConfigureLoanPredictor(const std::string& name) {
  std::lock_guard<std::mutex> lock(broker_mu_);
  return broker_.ConfigurePredictor(name);
}

FedLedger FederationRouter::LedgerCopy() const {
  std::lock_guard<std::mutex> lock(broker_mu_);
  return broker_.ledger();
}

std::vector<std::string> FederationRouter::RecentEvents() const {
  std::lock_guard<std::mutex> lock(broker_mu_);
  return broker_.events();
}

void FederationRouter::RestoreLedger(const FedLedger& ledger) {
  std::lock_guard<std::mutex> lock(broker_mu_);
  broker_.RestoreLedger(ledger);
}

void FederationRouter::ReconcileBroker() {
  std::lock_guard<std::mutex> lock(broker_mu_);
  broker_.Reconcile(MaxEngineTime(), clusters_.size());
}

double FederationRouter::MaxEngineTime() const {
  double time = 0.0;
  for (int k = 0; k < shard_count(); ++k) {
    const std::shared_ptr<const StateSnapshot> snap = shard(k)->snapshot();
    if (snap != nullptr) {
      time = std::max(time, snap->time);
    }
  }
  return time;
}

const std::vector<std::uint32_t>* FederationRouter::TargetEngines(
    const JsonValue& request) const {
  const JsonValue* cluster = request.Find("cluster");
  if (cluster != nullptr) {
    int c = -1;
    if (cluster->is_string()) {
      c = FindCluster(cluster->AsString());
    } else if (cluster->is_number()) {
      const std::int64_t index = cluster->AsInt();
      if (index >= 0 && index < cluster_count()) {
        c = static_cast<int>(index);
      }
    }
    return c < 0 ? nullptr : &cluster_engines_[static_cast<std::size_t>(c)];
  }
  const JsonValue* kind_field = request.Find("kind");
  if (kind_field == nullptr && cluster_count() == 1) {
    // Untargeted submit to a single-cluster federation goes to that cluster
    // whatever its kind — the plain-service compatibility path.
    return &cluster_engines_[0];
  }
  ClusterKind kind = ClusterKind::kTraining;
  if (kind_field != nullptr &&
      (!kind_field->is_string() ||
       !ParseKindToken(kind_field->AsString(), &kind))) {
    return nullptr;
  }
  const std::vector<std::uint32_t>& engines =
      kind_engines_[static_cast<int>(kind)];
  return engines.empty() ? nullptr : &engines;
}

ShardRouter::Plan FederationRouter::RouteEngine(TelemetryCmd cmd,
                                                const JsonValue& request) const {
  if (cmd == TelemetryCmd::kMigrate) {
    Plan plan;
    const JsonValue* job = request.Find("job");
    if (cluster_count() < 2 || job == nullptr || !job->is_number()) {
      plan.reject = true;
      return plan;
    }
    plan.shard = ShardOfJob(job->AsInt());
    plan.shed = shard(static_cast<int>(plan.shard))->EngineSaturated();
    return plan;
  }
  if (cmd == TelemetryCmd::kSubmit) {
    const std::vector<std::uint32_t>* targets = TargetEngines(request);
    if (targets == nullptr) {
      Plan plan;
      plan.reject = true;
      return plan;
    }
    if (shard_count() == 1) {
      Plan plan;
      plan.shed = front()->EngineSaturated();
      return plan;
    }
    Plan plan;
    plan.rewrite_job = true;
    const JsonValue* key = request.Find("key");
    std::uint64_t hash = 0;
    if (key != nullptr && key->is_string()) {
      const std::string& k = key->AsString();
      hash = Hash(k.data(), k.size());
    } else {
      // Peek only; BeginEngine's fetch_add is authoritative.
      hash = HashSeq(submit_seq());
    }
    plan.shard = (*targets)[hash % targets->size()];
    plan.shed = shard(static_cast<int>(plan.shard))->EngineSaturated();
    return plan;
  }
  return ShardRouter::RouteEngine(cmd, request);
}

std::uint32_t FederationRouter::BeginEngine(TelemetryCmd cmd,
                                            JsonValue& request,
                                            const Plan& plan) {
  if (plan.reject || cmd == TelemetryCmd::kMigrate) {
    return plan.shard;
  }
  if (cmd == TelemetryCmd::kSubmit && shard_count() > 1) {
    const JsonValue* key = request.Find("key");
    if (key != nullptr && key->is_string()) {
      return plan.shard;
    }
    // RouteEngine already validated the target set; the counter consumed
    // here is the authoritative in-cluster pick.
    const std::vector<std::uint32_t>* targets = TargetEngines(request);
    const std::uint64_t seq = NextSubmitSeq();
    return (*targets)[HashSeq(seq) % targets->size()];
  }
  return ShardRouter::BeginEngine(cmd, request, plan);
}

JsonValue FederationRouter::RejectReply(TelemetryCmd cmd,
                                        const JsonValue& request) const {
  JsonValue reply;
  if (cmd == TelemetryCmd::kMigrate) {
    if (cluster_count() < 2) {
      reply = ErrorReply("failed_precondition",
                         "migration requires at least two clusters");
    } else {
      reply =
          ErrorReply("invalid_argument", "migrate requires a numeric \"job\"");
    }
  } else {
    const JsonValue* cluster = request.Find("cluster");
    if (cluster != nullptr) {
      reply = ErrorReply("invalid_argument",
                         "no such cluster: " + DescribeTarget(*cluster));
    } else {
      const JsonValue* kind = request.Find("kind");
      ClusterKind parsed;
      if (kind != nullptr &&
          (!kind->is_string() || !ParseKindToken(kind->AsString(), &parsed))) {
        reply = ErrorReply("invalid_argument",
                           "unknown cluster kind: " + DescribeTarget(*kind));
      } else {
        reply = ErrorReply("failed_precondition",
                           "no cluster of the requested kind");
      }
    }
  }
  EchoSeq(request, reply);
  return reply;
}

void FederationRouter::DispatchEngine(
    const Plan& plan, std::uint32_t shard_index, JsonValue request,
    std::shared_ptr<SchedulerService::CompletionSink> sink, std::uint64_t a,
    std::uint64_t b) {
  const TelemetryCmd cmd = TelemetryCmdFromName(request.GetString("cmd"));
  if (plan.reject) {
    front()->CountProtocolError();
    sink->OnReply(a, b, RejectReply(cmd, request));
    return;
  }
  if (cmd == TelemetryCmd::kMigrate) {
    StartMigration(std::move(request), std::move(sink), a, b);
    return;
  }
  ShardRouter::DispatchEngine(plan, shard_index, std::move(request),
                              std::move(sink), a, b);
}

void FederationRouter::StartMigration(
    JsonValue request, std::shared_ptr<SchedulerService::CompletionSink> sink,
    std::uint64_t a, std::uint64_t b) {
  const auto fail = [&](JsonValue reply) {
    front()->CountProtocolError();
    EchoSeq(request, reply);
    sink->OnReply(a, b, std::move(reply));
  };

  const std::int64_t global = request.Find("job")->AsInt();  // RouteEngine-checked
  const std::uint32_t source_engine = ShardOfJob(global);
  const std::uint32_t source_cluster = ClusterOfEngine(source_engine);

  const JsonValue* to = request.Find("to");
  if (to == nullptr) {
    return fail(
        ErrorReply("invalid_argument", "migrate requires a \"to\" cluster"));
  }
  int dest = -1;
  if (to->is_string()) {
    dest = FindCluster(to->AsString());
  } else if (to->is_number()) {
    const std::int64_t index = to->AsInt();
    if (index >= 0 && index < cluster_count()) {
      dest = static_cast<int>(index);
    }
  }
  if (dest < 0) {
    return fail(ErrorReply("invalid_argument",
                           "no such cluster: " + DescribeTarget(*to)));
  }
  if (clusters_[static_cast<std::size_t>(dest)].kind !=
      ClusterKind::kTraining) {
    return fail(ErrorReply(
        "failed_precondition",
        "destination cluster \"" +
            clusters_[static_cast<std::size_t>(dest)].name +
            "\" is not a training cluster"));
  }
  if (clusters_[source_cluster].kind != ClusterKind::kTraining) {
    return fail(ErrorReply("failed_precondition",
                           "job " + std::to_string(global) +
                               " is not on a training cluster"));
  }
  if (static_cast<std::uint32_t>(dest) == source_cluster) {
    return fail(ErrorReply(
        "failed_precondition",
        "job " + std::to_string(global) + " is already on cluster \"" +
            clusters_[source_cluster].name + "\""));
  }

  const std::shared_ptr<const StateSnapshot> snap =
      shard(static_cast<int>(source_engine))->snapshot();
  if (snap == nullptr ||
      shard(static_cast<int>(source_engine))->stopped()) {
    return fail(ErrorReply("unavailable", "service is stopped"));
  }
  // RCU read: the record can be stale, but the cancel below is the
  // authoritative gate — a job that finished in between fails there and the
  // engine error is forwarded verbatim.
  const JobRecord* record = snap->FindJob(ToLocal(global));
  if (record == nullptr) {
    return fail(
        ErrorReply("not_found", "no such job: " + std::to_string(global)));
  }
  if (record->state == JobState::kFinished ||
      record->state == JobState::kCancelled) {
    return fail(ErrorReply(
        "failed_precondition",
        "job " + std::to_string(global) + " is already " +
            (record->state == JobState::kFinished ? "finished" : "cancelled")));
  }

  const double cost = record->spec.checkpointing ? kMigrationCheckpointCost
                                                 : kMigrationColdCost;
  // The destination engine comes from a dedicated hash, never the submit
  // counter: migrations must not shift how later keyless submits route (the
  // counter is snapshotted and replay-compared).
  const std::string route_key = "migrate:" + std::to_string(global);
  const std::vector<std::uint32_t>& dests =
      cluster_engines_[static_cast<std::size_t>(dest)];
  const std::uint32_t dest_engine =
      dests[Hash(route_key.data(), route_key.size()) % dests.size()];

  JsonValue submit = JsonValue::MakeObject();
  submit.Set("cmd", JsonValue::MakeString("submit"));
  submit.Set("at", JsonValue::MakeNumber(0.0));  // patched to the cancel time
  submit.Set("gpus_per_worker", JsonValue::MakeNumber(
                                    static_cast<double>(record->spec.gpus_per_worker)));
  submit.Set("min_workers", JsonValue::MakeNumber(
                                static_cast<double>(record->spec.min_workers)));
  submit.Set("max_workers", JsonValue::MakeNumber(
                                static_cast<double>(record->spec.max_workers)));
  submit.Set("requested_workers",
             JsonValue::MakeNumber(
                 static_cast<double>(record->spec.requested_workers)));
  submit.Set("fungible", JsonValue::MakeBool(record->spec.fungible));
  submit.Set("heterogeneous", JsonValue::MakeBool(record->spec.heterogeneous));
  submit.Set("checkpointing", JsonValue::MakeBool(record->spec.checkpointing));
  submit.Set("model",
             JsonValue::MakeString(ModelFamilyName(record->spec.model)));
  submit.Set("total_work",
             JsonValue::MakeNumber(record->work_remaining + cost));

  JsonValue cancel = JsonValue::MakeObject();
  cancel.Set("cmd", JsonValue::MakeString("cancel"));
  cancel.Set("job",
             JsonValue::MakeNumber(static_cast<double>(ToLocal(global))));
  const JsonValue* at = request.Find("at");
  if (at != nullptr && at->is_number()) {
    cancel.Set("at", *at);
  }

  auto chain = std::make_shared<MigrationSink>(
      this, std::move(request), std::move(sink), a, b, global, source_engine,
      dest_engine, static_cast<std::uint32_t>(dest), source_cluster,
      std::move(submit), cost);
  shard(static_cast<int>(source_engine))
      ->ExecuteAsync(std::move(cancel), std::move(chain), 0, 0,
                     SchedulerService::CmdClass::kEngine);
}

LoanBroker::ClusterSignal FederationRouter::SignalFor(int c) const {
  const ClusterSpec& spec = clusters_[static_cast<std::size_t>(c)];
  LoanBroker::ClusterSignal signal;
  signal.kind = spec.kind;
  signal.loan_priority = spec.loan_priority;
  for (const std::uint32_t e : cluster_engines_[static_cast<std::size_t>(c)]) {
    const std::shared_ptr<const StateSnapshot> snap =
        shard(static_cast<int>(e))->snapshot();
    if (snap == nullptr) {
      continue;
    }
    if (spec.kind == ClusterKind::kInference) {
      signal.total_gpus += snap->inference.total_gpus;
      signal.free_gpus += snap->inference.free_gpus;
    } else {
      signal.total_gpus += snap->training.total_gpus;
      signal.free_gpus += snap->training.free_gpus;
      signal.pending_jobs +=
          static_cast<std::int64_t>(snap->state_counts[0]);
    }
  }
  return signal;
}

std::vector<LoanBroker::ClusterSignal> FederationRouter::CollectSignals()
    const {
  std::vector<LoanBroker::ClusterSignal> signals;
  signals.reserve(clusters_.size());
  for (int c = 0; c < cluster_count(); ++c) {
    signals.push_back(SignalFor(c));
  }
  return signals;
}

JsonValue FederationRouter::MergeFanout(TelemetryCmd cmd,
                                        const JsonValue& request,
                                        const std::string& snapshot_path,
                                        std::uint64_t snapshot_submit_seq,
                                        std::vector<JsonValue>& replies) const {
  if (cmd == TelemetryCmd::kSnapshot && !snapshot_path.empty()) {
    return MergeFederationSnapshot(request, snapshot_path,
                                   snapshot_submit_seq, replies);
  }
  JsonValue merged = ShardRouter::MergeFanout(cmd, request, snapshot_path,
                                              snapshot_submit_seq, replies);
  if ((cmd == TelemetryCmd::kAdvance || cmd == TelemetryCmd::kDrain) &&
      merged.GetBool("ok", false)) {
    // Broker round at the barrier: every engine has stepped to the merged
    // time and published its snapshot (publish-before-completion), so the
    // signals are post-barrier. Barrier merges are serialized by the fanout
    // countdown, making the grant/reclaim trace deterministic; the lock only
    // fences concurrent migration completions.
    std::lock_guard<std::mutex> lock(broker_mu_);
    broker_.Evaluate(merged.GetDouble("time", 0.0), CollectSignals());
    merged.Set("loans",
               JsonValue::MakeNumber(
                   static_cast<double>(broker_.ledger().loans.size())));
  }
  return merged;
}

JsonValue FederationRouter::MergeFederationSnapshot(
    const JsonValue& request, const std::string& snapshot_path,
    std::uint64_t snapshot_submit_seq, std::vector<JsonValue>& replies) const {
  for (std::size_t k = 0; k < replies.size(); ++k) {
    if (!replies[k].GetBool("ok", false)) {
      JsonValue failed = replies[k];
      failed.Set("shard", JsonValue::MakeNumber(static_cast<double>(k)));
      for (std::size_t p = 0; p < replies.size(); ++p) {
        std::remove(PartPath(snapshot_path, static_cast<int>(p)).c_str());
      }
      EchoSeq(request, failed);
      return failed;
    }
  }

  FedSnapshot fed;
  fed.submit_seq = snapshot_submit_seq;
  double time = 0.0, commands = 0.0;
  for (int c = 0; c < cluster_count(); ++c) {
    const ClusterSpec& spec = clusters_[static_cast<std::size_t>(c)];
    // Per-cluster images carry no routing counter of their own; the
    // federation counter above covers every cluster.
    MultiSnapshot multi;
    for (const std::uint32_t e :
         cluster_engines_[static_cast<std::size_t>(c)]) {
      StatusOr<std::string> image =
          ReadFileBytes(PartPath(snapshot_path, static_cast<int>(e)));
      if (!image.ok()) {
        JsonValue failed = StatusReply(image.status());
        EchoSeq(request, failed);
        return failed;
      }
      multi.shard_images.push_back(std::move(image).value());
      time = std::max(time, replies[e].GetDouble("time", 0.0));
      commands += replies[e].GetDouble("commands", 0.0);
    }
    FedClusterImage cluster;
    cluster.name = spec.name;
    cluster.kind = static_cast<std::uint8_t>(spec.kind);
    cluster.loan_priority = spec.loan_priority;
    cluster.shards = static_cast<std::uint32_t>(spec.shards);
    cluster.image = EncodeMultiSnapshot(multi);
    fed.clusters.push_back(std::move(cluster));
  }
  {
    std::lock_guard<std::mutex> lock(broker_mu_);
    fed.ledger = broker_.ledger();
  }
  const Status saved = SaveFedSnapshot(fed, snapshot_path);
  for (std::size_t k = 0; k < replies.size(); ++k) {
    std::remove(PartPath(snapshot_path, static_cast<int>(k)).c_str());
  }
  if (!saved.ok()) {
    JsonValue failed = StatusReply(saved);
    EchoSeq(request, failed);
    return failed;
  }
  JsonValue merged = OkReply();
  merged.Set("path", JsonValue::MakeString(snapshot_path));
  merged.Set("commands", JsonValue::MakeNumber(commands));
  merged.Set("time", JsonValue::MakeNumber(time));
  merged.Set("shards",
             JsonValue::MakeNumber(static_cast<double>(shard_count())));
  merged.Set("clusters",
             JsonValue::MakeNumber(static_cast<double>(cluster_count())));
  EchoSeq(request, merged);
  return merged;
}

JsonValue FederationRouter::ReadReply(const JsonValue& request) const {
  const std::string cmd = request.GetString("cmd");
  // Intercepted before any base/single-engine delegation: the plain
  // service's ReadReply answers federation_stats with failed_precondition.
  if (cmd == "federation_stats") {
    return FederationStats(request);
  }
  JsonValue reply = ShardRouter::ReadReply(request);
  if (shard_count() > 1 && cmd == "cluster_stats" &&
      reply.GetBool("ok", false)) {
    JsonValue clusters = JsonValue::MakeArray();
    FedLedger ledger;
    {
      std::lock_guard<std::mutex> lock(broker_mu_);
      ledger = broker_.ledger();
    }
    for (int c = 0; c < cluster_count(); ++c) {
      clusters.Append(ClusterInfo(c, ledger));
    }
    reply.Set("federation", std::move(clusters));
  }
  return reply;
}

JsonValue FederationRouter::ClusterInfo(int c, const FedLedger& ledger) const {
  const ClusterSpec& spec = clusters_[static_cast<std::size_t>(c)];
  std::array<std::uint64_t, 4> states{};
  PoolCounters pool;
  for (const std::uint32_t e : cluster_engines_[static_cast<std::size_t>(c)]) {
    const std::shared_ptr<const StateSnapshot> snap =
        shard(static_cast<int>(e))->snapshot();
    if (snap == nullptr) {
      continue;
    }
    for (std::size_t s = 0; s < states.size(); ++s) {
      states[s] += snap->state_counts[s];
    }
    const PoolCounters& from = spec.kind == ClusterKind::kInference
                                   ? snap->inference
                                   : snap->training;
    pool.servers += from.servers;
    pool.total_gpus += from.total_gpus;
    pool.used_gpus += from.used_gpus;
    pool.free_gpus += from.free_gpus;
  }
  std::int64_t loaned = 0, borrowed = 0;
  for (const FedLoan& loan : ledger.loans) {
    if (loan.lender == static_cast<std::uint32_t>(c)) {
      loaned += loan.gpus;
    }
    if (loan.borrower == static_cast<std::uint32_t>(c)) {
      borrowed += loan.gpus;
    }
  }

  JsonValue info = JsonValue::MakeObject();
  info.Set("cluster", JsonValue::MakeNumber(static_cast<double>(c)));
  info.Set("name", JsonValue::MakeString(spec.name));
  info.Set("kind", JsonValue::MakeString(ClusterKindName(spec.kind)));
  info.Set("loan_priority",
           JsonValue::MakeNumber(static_cast<double>(spec.loan_priority)));
  info.Set("shards", JsonValue::MakeNumber(static_cast<double>(spec.shards)));
  info.Set("first_engine",
           JsonValue::MakeNumber(static_cast<double>(
               first_engine_[static_cast<std::size_t>(c)])));
  JsonValue jobs = JsonValue::MakeObject();
  for (std::size_t s = 0; s < states.size(); ++s) {
    jobs.Set(JobStateLabel(static_cast<int>(s)),
             JsonValue::MakeNumber(static_cast<double>(states[s])));
  }
  info.Set("jobs", std::move(jobs));
  JsonValue gpus = JsonValue::MakeObject();
  gpus.Set("total", JsonValue::MakeNumber(static_cast<double>(pool.total_gpus)));
  gpus.Set("used", JsonValue::MakeNumber(static_cast<double>(pool.used_gpus)));
  gpus.Set("free", JsonValue::MakeNumber(static_cast<double>(pool.free_gpus)));
  info.Set("gpus", std::move(gpus));
  info.Set("loaned", JsonValue::MakeNumber(static_cast<double>(loaned)));
  info.Set("borrowed", JsonValue::MakeNumber(static_cast<double>(borrowed)));
  return info;
}

JsonValue FederationRouter::FederationStats(const JsonValue& request) const {
  for (int k = 0; k < shard_count(); ++k) {
    if (shard(k)->snapshot() == nullptr || shard(k)->stopped()) {
      JsonValue reply = ErrorReply("unavailable", "service is stopped");
      EchoSeq(request, reply);
      return reply;
    }
  }
  FedLedger ledger;
  std::vector<std::string> events;
  {
    std::lock_guard<std::mutex> lock(broker_mu_);
    ledger = broker_.ledger();
    events = broker_.events();
  }

  JsonValue reply = OkReply();
  reply.Set("time", JsonValue::MakeNumber(MaxEngineTime()));
  reply.Set("submit_seq",
            JsonValue::MakeNumber(static_cast<double>(submit_seq())));
  reply.Set("shards",
            JsonValue::MakeNumber(static_cast<double>(shard_count())));
  JsonValue clusters = JsonValue::MakeArray();
  for (int c = 0; c < cluster_count(); ++c) {
    clusters.Append(ClusterInfo(c, ledger));
  }
  reply.Set("clusters", std::move(clusters));

  JsonValue broker = JsonValue::MakeObject();
  broker.Set("active",
             JsonValue::MakeNumber(static_cast<double>(ledger.loans.size())));
  broker.Set("next_loan_id",
             JsonValue::MakeNumber(static_cast<double>(ledger.next_loan_id)));
  broker.Set("granted",
             JsonValue::MakeNumber(static_cast<double>(ledger.total_granted)));
  broker.Set("reclaimed", JsonValue::MakeNumber(
                              static_cast<double>(ledger.total_reclaimed)));
  broker.Set("returned", JsonValue::MakeNumber(
                             static_cast<double>(ledger.total_returned)));
  // Hex string: the hash is a full u64 and would lose bits as a double.
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(ledger.ledger_hash));
  broker.Set("ledger_hash", JsonValue::MakeString(hex));
  JsonValue loans = JsonValue::MakeArray();
  for (const FedLoan& loan : ledger.loans) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("id", JsonValue::MakeNumber(static_cast<double>(loan.id)));
    entry.Set("lender",
              JsonValue::MakeNumber(static_cast<double>(loan.lender)));
    entry.Set("borrower",
              JsonValue::MakeNumber(static_cast<double>(loan.borrower)));
    entry.Set("gpus", JsonValue::MakeNumber(static_cast<double>(loan.gpus)));
    entry.Set("granted_at", JsonValue::MakeNumber(loan.granted_at));
    loans.Append(std::move(entry));
  }
  broker.Set("loans", std::move(loans));
  JsonValue recent = JsonValue::MakeArray();
  for (const std::string& event : events) {
    recent.Append(JsonValue::MakeString(event));
  }
  broker.Set("events", std::move(recent));
  reply.Set("broker", std::move(broker));

  front()->CountRead();
  EchoSeq(request, reply);
  return reply;
}

std::string FederationRouter::RenderPromText() const {
  std::string text = ShardRouter::RenderPromText();
  FedLedger ledger;
  {
    std::lock_guard<std::mutex> lock(broker_mu_);
    ledger = broker_.ledger();
  }
  char buf[64];
  const auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };

  text += "# HELP lyra_fed_clusters Clusters in the federation.\n";
  text += "# TYPE lyra_fed_clusters gauge\n";
  text += "lyra_fed_clusters " + num(cluster_count()) + "\n";
  text += "# HELP lyra_fed_cluster_info Cluster identity (value is always 1).\n";
  text += "# TYPE lyra_fed_cluster_info gauge\n";
  for (int c = 0; c < cluster_count(); ++c) {
    const ClusterSpec& spec = clusters_[static_cast<std::size_t>(c)];
    text += "lyra_fed_cluster_info{cluster=\"" + spec.name + "\",kind=\"" +
            ClusterKindName(spec.kind) + "\"} 1\n";
  }
  text += "# HELP lyra_fed_jobs Jobs by cluster and state.\n";
  text += "# TYPE lyra_fed_jobs gauge\n";
  for (int c = 0; c < cluster_count(); ++c) {
    const ClusterSpec& spec = clusters_[static_cast<std::size_t>(c)];
    std::array<std::uint64_t, 4> states{};
    for (const std::uint32_t e :
         cluster_engines_[static_cast<std::size_t>(c)]) {
      const std::shared_ptr<const StateSnapshot> snap =
          shard(static_cast<int>(e))->snapshot();
      if (snap == nullptr) {
        continue;
      }
      for (std::size_t s = 0; s < states.size(); ++s) {
        states[s] += snap->state_counts[s];
      }
    }
    for (std::size_t s = 0; s < states.size(); ++s) {
      text += "lyra_fed_jobs{cluster=\"" + spec.name + "\",state=\"" +
              JobStateLabel(static_cast<int>(s)) + "\"} " +
              num(static_cast<double>(states[s])) + "\n";
    }
  }
  text += "# HELP lyra_fed_gpus GPUs by cluster and pool counter.\n";
  text += "# TYPE lyra_fed_gpus gauge\n";
  for (int c = 0; c < cluster_count(); ++c) {
    const ClusterSpec& spec = clusters_[static_cast<std::size_t>(c)];
    const LoanBroker::ClusterSignal signal = SignalFor(c);
    text += "lyra_fed_gpus{cluster=\"" + spec.name + "\",pool=\"total\"} " +
            num(static_cast<double>(signal.total_gpus)) + "\n";
    text += "lyra_fed_gpus{cluster=\"" + spec.name + "\",pool=\"free\"} " +
            num(static_cast<double>(signal.free_gpus)) + "\n";
  }
  text += "# HELP lyra_fed_gpus_loaned GPUs currently lent out, by lender.\n";
  text += "# TYPE lyra_fed_gpus_loaned gauge\n";
  text +=
      "# HELP lyra_fed_gpus_borrowed GPUs currently borrowed, by borrower.\n";
  text += "# TYPE lyra_fed_gpus_borrowed gauge\n";
  for (int c = 0; c < cluster_count(); ++c) {
    const ClusterSpec& spec = clusters_[static_cast<std::size_t>(c)];
    std::int64_t loaned = 0, borrowed = 0;
    for (const FedLoan& loan : ledger.loans) {
      if (loan.lender == static_cast<std::uint32_t>(c)) {
        loaned += loan.gpus;
      }
      if (loan.borrower == static_cast<std::uint32_t>(c)) {
        borrowed += loan.gpus;
      }
    }
    text += "lyra_fed_gpus_loaned{cluster=\"" + spec.name + "\"} " +
            num(static_cast<double>(loaned)) + "\n";
    text += "lyra_fed_gpus_borrowed{cluster=\"" + spec.name + "\"} " +
            num(static_cast<double>(borrowed)) + "\n";
  }
  text += "# HELP lyra_fed_loans_active Outstanding cross-cluster loans.\n";
  text += "# TYPE lyra_fed_loans_active gauge\n";
  text += "lyra_fed_loans_active " +
          num(static_cast<double>(ledger.loans.size())) + "\n";
  text += "# HELP lyra_fed_loans_granted_total GPUs ever granted.\n";
  text += "# TYPE lyra_fed_loans_granted_total counter\n";
  text += "lyra_fed_loans_granted_total " +
          num(static_cast<double>(ledger.total_granted)) + "\n";
  text += "# HELP lyra_fed_loans_reclaimed_total GPUs ever reclaimed.\n";
  text += "# TYPE lyra_fed_loans_reclaimed_total counter\n";
  text += "lyra_fed_loans_reclaimed_total " +
          num(static_cast<double>(ledger.total_reclaimed)) + "\n";
  text += "# HELP lyra_fed_loans_returned_total GPUs ever returned.\n";
  text += "# TYPE lyra_fed_loans_returned_total counter\n";
  text += "lyra_fed_loans_returned_total " +
          num(static_cast<double>(ledger.total_returned)) + "\n";
  return text;
}

// --- Build / restore ------------------------------------------------------

StatusOr<FederationSet> BuildFederation(
    const ServiceOptions& base, const std::vector<ClusterSpec>& clusters,
    const std::function<std::unique_ptr<TimeDriver>(int)>& make_driver) {
  if (clusters.empty()) {
    return Status::InvalidArgument("federation needs at least one cluster");
  }
  int total = 0;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (clusters[c].shards < 1 || clusters[c].shards > 64) {
      return Status::InvalidArgument(
          "cluster shard count must be in [1, 64], got " +
          std::to_string(clusters[c].shards));
    }
    if (!ValidClusterName(clusters[c].name)) {
      return Status::InvalidArgument("bad cluster name: \"" +
                                     clusters[c].name + "\"");
    }
    for (std::size_t other = 0; other < c; ++other) {
      if (clusters[other].name == clusters[c].name) {
        return Status::InvalidArgument("duplicate cluster name: \"" +
                                       clusters[c].name + "\"");
      }
    }
    total += clusters[c].shards;
  }
  if (total > 64) {
    return Status::InvalidArgument(
        "federation engine count must be in [1, 64], got " +
        std::to_string(total));
  }

  FederationSet set;
  int k = 0;
  for (const ClusterSpec& cluster : clusters) {
    for (int s = 0; s < cluster.shards; ++s) {
      ServiceOptions options = base;
      // Flat-index seed discipline, matching BuildShardSet: engine 0 keeps
      // the base seed, so a one-engine federation is the unsharded service.
      options.engine.seed = base.engine.seed + static_cast<std::uint64_t>(k);
      if (!base.trace_path.empty() && k > 0) {
        options.trace_path = base.trace_path + ".fed" + std::to_string(k);
      }
      auto service = std::make_unique<SchedulerService>(std::move(options),
                                                        make_driver(k));
      const Status started = service->Start();
      if (!started.ok()) {
        return started;
      }
      set.services.push_back(std::move(service));
      ++k;
    }
  }
  std::vector<SchedulerService*> pointers;
  pointers.reserve(set.services.size());
  for (const auto& service : set.services) {
    pointers.push_back(service.get());
  }
  set.router =
      std::make_unique<FederationRouter>(std::move(pointers), clusters);
  if (!base.loan_predictor.empty()) {
    const Status configured =
        set.router->ConfigureLoanPredictor(base.loan_predictor);
    if (!configured.ok()) {
      return configured;
    }
  }
  return set;
}

StatusOr<FederationSet> RestoreFederation(
    const ServiceOptions& base, const std::string& snapshot_path,
    const std::function<std::unique_ptr<TimeDriver>(int)>& make_driver) {
  StatusOr<FedSnapshot> loaded = LoadFedSnapshot(snapshot_path);
  if (!loaded.ok()) {
    return loaded.status();
  }
  const FedSnapshot& fed = loaded.value();

  std::vector<ClusterSpec> clusters;
  FederationSet set;
  int k = 0;
  for (const FedClusterImage& cluster : fed.clusters) {
    if (cluster.kind > 1) {
      return Status::DataLoss("bad cluster kind in " + snapshot_path);
    }
    ClusterSpec spec;
    spec.name = cluster.name;
    spec.kind = static_cast<ClusterKind>(cluster.kind);
    spec.shards = static_cast<int>(cluster.shards);
    spec.loan_priority = static_cast<int>(cluster.loan_priority);

    StatusOr<MultiSnapshot> multi = DecodeMultiSnapshot(
        cluster.image, snapshot_path + " (cluster " + cluster.name + ")");
    if (!multi.ok()) {
      return multi.status();
    }
    if (multi.value().shard_images.size() !=
        static_cast<std::size_t>(cluster.shards)) {
      return Status::DataLoss("cluster " + cluster.name + " has " +
                              std::to_string(multi.value().shard_images.size()) +
                              " images for " + std::to_string(cluster.shards) +
                              " shards in " + snapshot_path);
    }
    for (std::size_t s = 0; s < multi.value().shard_images.size(); ++s) {
      ServiceOptions options = base;
      if (!base.trace_path.empty() && k > 0) {
        options.trace_path = base.trace_path + ".fed" + std::to_string(k);
      }
      auto service = std::make_unique<SchedulerService>(std::move(options),
                                                        make_driver(k));
      const Status restored = service->RestoreBytes(
          multi.value().shard_images[s],
          snapshot_path + " (cluster " + cluster.name + " shard " +
              std::to_string(s) + ")");
      if (!restored.ok()) {
        return restored;
      }
      set.services.push_back(std::move(service));
      ++k;
    }
    clusters.push_back(std::move(spec));
  }
  if (k < 1 || k > 64) {
    return Status::DataLoss("federation engine count must be in [1, 64], got " +
                            std::to_string(k));
  }

  std::vector<SchedulerService*> pointers;
  pointers.reserve(set.services.size());
  for (const auto& service : set.services) {
    pointers.push_back(service.get());
  }
  auto router = std::make_unique<FederationRouter>(std::move(pointers),
                                                   std::move(clusters));
  router->set_submit_seq(fed.submit_seq);
  if (!base.loan_predictor.empty()) {
    const Status configured =
        router->ConfigureLoanPredictor(base.loan_predictor);
    if (!configured.ok()) {
      return configured;
    }
  }
  router->RestoreLedger(fed.ledger);
  // A crash between a snapshot and a cluster-set change can persist loans
  // against clusters that no longer exist; drop them before serving.
  router->ReconcileBroker();
  set.router = std::move(router);
  return set;
}

bool IsFedSnapshotFile(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return false;
  }
  char magic[8] = {};
  const std::size_t n = std::fread(magic, 1, sizeof(magic), in);
  std::fclose(in);
  return n == sizeof(magic) && std::memcmp(magic, "LYRAFED_", 8) == 0;
}

}  // namespace lyra::svc
