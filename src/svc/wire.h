// Wire protocol for the online scheduler service.
//
// Frames are a 4-byte big-endian payload length followed by that many bytes
// of UTF-8 JSON. The payload cap matches JsonParseLimits::Untrusted()
// (1 MiB): a frame the parser would reject is refused at the framing layer,
// before any allocation proportional to the claimed length. Helpers here do
// blocking fd I/O with EINTR retry; FrameDecoder is the incremental variant
// for callers that manage their own buffers (the epoll event loop and the
// load generator's receiver thread).
//
// All socket writes use send(2)/sendmsg(2) with MSG_NOSIGNAL: a peer that
// disconnects with a reply in flight produces an EPIPE error return, never a
// process-killing SIGPIPE (svc_fastpath_test pins this).
#ifndef SRC_SVC_WIRE_H_
#define SRC_SVC_WIRE_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace lyra::svc {

// Maximum frame payload, aligned with the untrusted JSON parse limit.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

// Writes the 4-byte big-endian length prefix for `payload_size` into `out`.
void EncodeFrameHeader(std::uint32_t payload_size, char out[4]);

// Length-prefixes `payload` for transmission.
std::string EncodeFrame(const std::string& payload);

// Appends the length-prefixed frame to `out` (the batched-sender variant:
// many frames accumulate into one buffer and leave in one syscall).
void AppendFrame(const std::string& payload, std::string& out);

// Writes one frame to `fd`, retrying short writes and EINTR.
Status WriteFrame(int fd, const std::string& payload);

// Writes `size` raw bytes to `fd` (already-framed data), retrying short
// writes and EINTR. MSG_NOSIGNAL like every other send path here.
Status WriteAllBytes(int fd, const char* data, std::size_t size);

// Reads one frame from `fd`. Unavailable("eof") on a clean close at a frame
// boundary, DataLoss on a mid-frame close, InvalidArgument on an oversized
// length prefix.
StatusOr<std::string> ReadFrame(int fd);

// Incremental decoder: feed bytes as they arrive, pop complete payloads.
class FrameDecoder {
 public:
  void Append(const char* data, std::size_t size);

  // Extracts the next complete payload into `payload`. Returns false when no
  // complete frame is buffered. Fails on an oversized length prefix (the
  // stream is unrecoverable after that).
  StatusOr<bool> Next(std::string* payload);

  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

// Unix-domain socket helpers. Paths must fit sockaddr_un (~107 chars).
StatusOr<int> ListenUnix(const std::string& path, int backlog);
StatusOr<int> ConnectUnix(const std::string& path);

// TCP (IPv4) helpers. `port` 0 binds an ephemeral port; ListenTcp reports
// the actual port through `bound_port` (when non-null). Listeners get
// SO_REUSEADDR; connected sockets get TCP_NODELAY (frames are small and
// latency-sensitive, Nagle would batch them against us).
StatusOr<int> ListenTcp(const std::string& host, int port, int backlog,
                        int* bound_port = nullptr);
StatusOr<int> ConnectTcp(const std::string& host, int port);

// Connects to whichever endpoint is configured: the Unix path when
// non-empty, else TCP host:port. The shared client-side policy of the load
// client and the CLI tools, in one place.
StatusOr<int> ConnectEndpoint(const std::string& unix_path,
                              const std::string& tcp_host, int tcp_port);

// Puts `fd` into non-blocking mode (the event loop's sockets).
Status SetNonBlocking(int fd);

}  // namespace lyra::svc

#endif  // SRC_SVC_WIRE_H_
