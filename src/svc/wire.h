// Wire protocol for the online scheduler service.
//
// Frames are a 4-byte big-endian payload length followed by that many bytes
// of UTF-8 JSON. The payload cap matches JsonParseLimits::Untrusted()
// (1 MiB): a frame the parser would reject is refused at the framing layer,
// before any allocation proportional to the claimed length. Helpers here do
// blocking fd I/O with EINTR retry; FrameDecoder is the incremental variant
// for callers that manage their own buffers (the load generator's receiver
// thread).
#ifndef SRC_SVC_WIRE_H_
#define SRC_SVC_WIRE_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace lyra::svc {

// Maximum frame payload, aligned with the untrusted JSON parse limit.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

// Length-prefixes `payload` for transmission.
std::string EncodeFrame(const std::string& payload);

// Writes one frame to `fd`, retrying short writes and EINTR.
Status WriteFrame(int fd, const std::string& payload);

// Reads one frame from `fd`. Unavailable("eof") on a clean close at a frame
// boundary, DataLoss on a mid-frame close, InvalidArgument on an oversized
// length prefix.
StatusOr<std::string> ReadFrame(int fd);

// Incremental decoder: feed bytes as they arrive, pop complete payloads.
class FrameDecoder {
 public:
  void Append(const char* data, std::size_t size);

  // Extracts the next complete payload into `payload`. Returns false when no
  // complete frame is buffered. Fails on an oversized length prefix (the
  // stream is unrecoverable after that).
  StatusOr<bool> Next(std::string* payload);

  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

// Unix-domain socket helpers. Paths must fit sockaddr_un (~107 chars).
StatusOr<int> ListenUnix(const std::string& path, int backlog);
StatusOr<int> ConnectUnix(const std::string& path);

}  // namespace lyra::svc

#endif  // SRC_SVC_WIRE_H_
