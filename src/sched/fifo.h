// FIFO scheduler: the paper's Baseline (§7.1).
//
// Jobs are served in arrival order at their full requested demand; a job
// whose demand cannot be met is skipped this epoch and retried later (it
// "suffers queuing when the scheduler fails to satisfy its demand on the
// first try", Fig 2). No elastic scaling: elastic jobs are launched at their
// maximum (requested) worker count.
#ifndef SRC_SCHED_FIFO_H_
#define SRC_SCHED_FIFO_H_

#include "src/sched/scheduler.h"

namespace lyra {

class FifoScheduler : public JobScheduler {
 public:
  const char* name() const override { return "FIFO"; }
  void Schedule(SchedulerContext& ctx) override;
};

// Shortest-job-first variant: identical to FIFO but pending jobs are served
// in increasing order of estimated running time. Used as a classical
// comparator in the allocation studies (§5.1).
class SjfScheduler : public JobScheduler {
 public:
  const char* name() const override { return "SJF"; }
  void Schedule(SchedulerContext& ctx) override;
};

}  // namespace lyra

#endif  // SRC_SCHED_FIFO_H_
