#include "src/sched/opportunistic.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/sched/placement_util.h"

namespace lyra {

void OpportunisticScheduler::Schedule(SchedulerContext& ctx) {
  obs::PhaseSpan placement_span(obs::Phase::kPlacement);
  std::vector<Job*> order = ctx.pending;
  std::stable_sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    return a->spec().submit_time < b->spec().submit_time;
  });
  for (Job* job : order) {
    const bool waiting_for_loan =
        job->spec().fungible && ctx.now - job->spec().submit_time < patience_;
    PlaceRequest request = BaseRequest(
        *job, job->spec().RequestedWorkers(),
        waiting_for_loan ? PoolPreference::kLoanedOnly : PoolPreference::kTrainingFirst);
    TryPlaceWorkers(*ctx.cluster, request);
  }
}

}  // namespace lyra
