#include "src/sched/pollux.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/sched/elastic_util.h"
#include "src/sched/placement_util.h"
#include "src/workload/throughput.h"

namespace lyra {
namespace {

struct Candidate {
  Job* job = nullptr;
  int min_workers = 0;   // smallest allowed allocation (0 if pending)
  int base_workers = 0;  // job's gang minimum when running
  int max_workers = 0;
  int current = 0;
  double stat_eff = 1.0;
  ModelScalingCurve curve;
};

// Goodput contribution of one job at `workers` workers: throughput relative
// to the job's maximum, scaled by statistical efficiency. Pollux's efficiency
// term decays as training approaches convergence, which is what makes it
// shrink large-and-long jobs near the end (§7.4).
double Goodput(const Candidate& c, int workers) {
  if (workers <= 0) {
    return 0.0;
  }
  return c.curve.ThroughputAt(workers) / c.curve.ThroughputAt(c.max_workers) *
         c.stat_eff;
}

double Fitness(const std::vector<Candidate>& candidates, const std::vector<int>& genome) {
  double total = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    total += Goodput(candidates[i], genome[i]);
  }
  return total;
}

int GenomeGpus(const std::vector<Candidate>& candidates, const std::vector<int>& genome) {
  int total = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    total += genome[i] * candidates[i].job->spec().gpus_per_worker;
  }
  return total;
}

// Shrinks random entries until the genome fits the GPU budget.
void Repair(const std::vector<Candidate>& candidates, int capacity_gpus,
            std::vector<int>& genome, Rng& rng) {
  int used = GenomeGpus(candidates, genome);
  while (used > capacity_gpus) {
    const auto i =
        static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(genome.size()) - 1));
    const Candidate& c = candidates[i];
    if (genome[i] > c.min_workers) {
      genome[i] -= 1;
      used -= c.job->spec().gpus_per_worker;
    } else if (c.min_workers == 0 && genome[i] > 0) {
      used -= genome[i] * c.job->spec().gpus_per_worker;
      genome[i] = 0;
    }
  }
}

}  // namespace

PolluxScheduler::PolluxScheduler(PolluxOptions options)
    : options_(options), rng_(options.seed) {}

void PolluxScheduler::Schedule(SchedulerContext& ctx) {
  obs::PhaseSpan placement_span(obs::Phase::kPlacement);
  ClusterState& cluster = *ctx.cluster;
  const PoolPreference pref = ctx.allow_loaned_placement
                                  ? PoolPreference::kTrainingFirst
                                  : PoolPreference::kTrainingOnly;

  // Inelastic jobs are not part of the goodput optimization; launch them in
  // arrival order when they fit.
  std::vector<Job*> pending_elastic;
  std::vector<Job*> order = ctx.pending;
  std::stable_sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    return a->spec().submit_time < b->spec().submit_time;
  });
  for (Job* job : order) {
    if (job->spec().elastic()) {
      pending_elastic.push_back(job);
      continue;
    }
    TryPlaceWorkers(cluster, BaseRequest(*job, job->spec().RequestedWorkers(), pref));
  }

  std::vector<Job*> elastic;
  for (Job* job : ctx.running) {
    if (job->spec().elastic()) {
      elastic.push_back(job);
    }
  }
  elastic.insert(elastic.end(), pending_elastic.begin(), pending_elastic.end());
  if (elastic.empty()) {
    return;
  }

  if (ctx.now - last_ga_run_ >= options_.ga_interval) {
    last_ga_run_ = ctx.now;
    RunGeneticAllocation(ctx, elastic);
  } else {
    // Between GA rounds, only admit pending elastic jobs at base demand.
    for (Job* job : pending_elastic) {
      TryPlaceWorkers(cluster, BaseRequest(*job, job->spec().min_workers, pref));
    }
  }
}

void PolluxScheduler::RunGeneticAllocation(SchedulerContext& ctx,
                                           const std::vector<Job*>& elastic) {
  ClusterState& cluster = *ctx.cluster;
  const PoolPreference pref = ctx.allow_loaned_placement
                                  ? PoolPreference::kTrainingFirst
                                  : PoolPreference::kTrainingOnly;

  std::vector<Candidate> candidates;
  int capacity = cluster.TrainingSideFreeGpus();
  for (Job* job : elastic) {
    Candidate c;
    c.job = job;
    c.current = PlacedWorkers(cluster, *job);
    c.base_workers = job->spec().min_workers;
    c.min_workers = c.current > 0 ? job->spec().min_workers : 0;
    c.max_workers = job->spec().max_workers;
    const double progress = 1.0 - job->work_remaining() / job->spec().total_work;
    c.stat_eff = 1.0 - 0.5 * progress;
    c.curve = CurveFor(job->spec().model);
    capacity += c.current * job->spec().gpus_per_worker;
    candidates.push_back(c);
  }

  const auto n = candidates.size();
  auto random_genome = [&]() {
    std::vector<int> g(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Candidate& c = candidates[i];
      if (c.min_workers == 0 && rng_.NextBernoulli(0.3)) {
        g[i] = 0;
      } else {
        g[i] = static_cast<int>(rng_.UniformInt(c.base_workers, c.max_workers));
      }
    }
    Repair(candidates, capacity, g, rng_);
    return g;
  };

  std::vector<std::pair<double, std::vector<int>>> population;
  {
    std::vector<int> current(n);
    std::vector<int> minimal(n);
    for (std::size_t i = 0; i < n; ++i) {
      current[i] = candidates[i].current;
      minimal[i] = candidates[i].min_workers == 0 ? candidates[i].base_workers
                                                  : candidates[i].min_workers;
    }
    Repair(candidates, capacity, current, rng_);
    Repair(candidates, capacity, minimal, rng_);
    population.emplace_back(Fitness(candidates, current), current);
    population.emplace_back(Fitness(candidates, minimal), minimal);
  }
  while (population.size() < static_cast<std::size_t>(options_.population)) {
    auto g = random_genome();
    population.emplace_back(Fitness(candidates, g), g);
  }

  for (int iter = 0; iter < options_.iterations; ++iter) {
    // Uniform crossover of two random parents plus point mutations.
    const auto a = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(population.size()) - 1));
    const auto b = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(population.size()) - 1));
    std::vector<int> child(n);
    for (std::size_t i = 0; i < n; ++i) {
      child[i] = rng_.NextBernoulli(0.5) ? population[a].second[i] : population[b].second[i];
    }
    if (rng_.NextBernoulli(options_.mutation_prob) && n > 0) {
      const auto i = static_cast<std::size_t>(
          rng_.UniformInt(0, static_cast<std::int64_t>(n) - 1));
      const Candidate& c = candidates[i];
      if (c.min_workers == 0 && rng_.NextBernoulli(0.3)) {
        child[i] = 0;
      } else {
        child[i] = static_cast<int>(rng_.UniformInt(c.base_workers, c.max_workers));
      }
    }
    Repair(candidates, capacity, child, rng_);
    const double fitness = Fitness(candidates, child);
    // Replace the worst member if the child improves on it (steady-state GA).
    auto worst = std::min_element(
        population.begin(), population.end(),
        [](const auto& x, const auto& y) { return x.first < y.first; });
    if (fitness > worst->first) {
      *worst = {fitness, std::move(child)};
    }
  }

  const auto& best = *std::max_element(
      population.begin(), population.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; });

  // Apply: shrink first to free capacity, then launch / grow.
  for (std::size_t i = 0; i < n; ++i) {
    const Candidate& c = candidates[i];
    const int target = best.second[i];
    if (c.current > 0 && target < c.current) {
      ShrinkFlexibleTo(cluster, *c.job, std::max(0, target - c.base_workers));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Candidate& c = candidates[i];
    const int target = best.second[i];
    if (target <= 0) {
      continue;
    }
    int placed = PlacedWorkers(cluster, *c.job);
    if (placed == 0) {
      if (!TryPlaceWorkers(cluster, BaseRequest(*c.job, c.base_workers, pref))) {
        continue;
      }
      placed = c.base_workers;
    }
    while (placed < target &&
           TryPlaceWorkers(cluster, FlexibleRequest(*c.job, 1, pref))) {
      ++placed;
    }
  }
}

}  // namespace lyra
