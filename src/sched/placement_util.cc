#include "src/sched/placement_util.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "src/common/check.h"
#include "src/obs/obs.h"

namespace lyra {
namespace {

constexpr double kCreditEpsilon = 1e-9;

bool LoanEligible(const PlaceRequest& request) {
  return request.fungible || request.heterogeneous;
}

// Placement works in *nominal* worker units: one worker on a training GPU
// counts 1.0; a worker on an inference GPU counts its compute factor (1/3).
// A fungible job moved to weaker GPUs keeps its global batch size by running
// proportionally more, smaller workers (§2.1), so it occupies 1/factor times
// the GPUs for the same nominal throughput — which is exactly what the
// paper's capacity normalization (§5.2) encodes.
double ServerWorkerCredit(const Server& server) {
  return GpuComputeFactor(server.gpu_type());
}

// Server-id groups the request may use, in preference order. Each group is
// internally GPU-type-uniform for non-heterogeneous jobs; heterogeneous jobs
// get a single mixed group ordered by pool preference.
std::vector<std::vector<ServerId>> EligibleGroups(const ClusterState& cluster,
                                                  const PlaceRequest& request) {
  std::vector<ServerId> training = cluster.ServersInPool(ServerPool::kTraining);
  std::vector<ServerId> loaned;
  if (LoanEligible(request)) {
    loaned = cluster.ServersInPool(ServerPool::kOnLoan);
  }

  // A non-heterogeneous job that already holds GPUs must stay on that type.
  GpuType current;
  const bool pinned = !request.heterogeneous &&
                      CurrentGpuType(cluster, request.job, &current);

  std::vector<std::vector<ServerId>> groups;
  auto push_group = [&](std::vector<ServerId> group, GpuType type) {
    if (group.empty()) {
      return;
    }
    if (pinned && type != current) {
      return;
    }
    groups.push_back(std::move(group));
  };

  if (request.heterogeneous) {
    std::vector<ServerId> merged;
    if (request.preference == PoolPreference::kLoanedFirst ||
        request.preference == PoolPreference::kLoanedOnly) {
      merged = loaned;
      if (request.preference != PoolPreference::kLoanedOnly) {
        merged.insert(merged.end(), training.begin(), training.end());
      }
    } else {
      merged = training;
      if (request.preference != PoolPreference::kTrainingOnly) {
        merged.insert(merged.end(), loaned.begin(), loaned.end());
      }
    }
    if (!merged.empty()) {
      groups.push_back(std::move(merged));
    }
    return groups;
  }

  switch (request.preference) {
    case PoolPreference::kTrainingFirst:
      push_group(std::move(training), GpuType::kTrainingV100);
      push_group(std::move(loaned), GpuType::kInferenceT4);
      break;
    case PoolPreference::kLoanedFirst:
      push_group(std::move(loaned), GpuType::kInferenceT4);
      push_group(std::move(training), GpuType::kTrainingV100);
      break;
    case PoolPreference::kTrainingOnly:
      push_group(std::move(training), GpuType::kTrainingV100);
      break;
    case PoolPreference::kLoanedOnly:
      push_group(std::move(loaned), GpuType::kInferenceT4);
      break;
  }
  return groups;
}

double GroupCapacityCredit(const ClusterState& cluster, const std::vector<ServerId>& group,
                           int gpus_per_worker) {
  double capacity = 0.0;
  for (ServerId id : group) {
    const Server& server = cluster.server(id);
    capacity += (server.free_gpus() / gpus_per_worker) * ServerWorkerCredit(server);
  }
  return capacity;
}

// Places physical workers into the group until `nominal_workers` of credit is
// accumulated; returns false — leaving a partial placement for the caller's
// transaction to roll back — if the group runs out of placeable servers
// first. Within the group best-fit prefers the earlier (preferred) pool
// position only implicitly through equal tie handling; the primary key is the
// tightest fit. A min-heap on (free GPUs, group position) replaces the
// per-worker rescan: only the chosen server's free count changes between
// picks, so pop + push keeps the heap exact and servers that drop below one
// worker's demand leave the heap for good.
bool PlaceIntoGroup(ClusterState& cluster, const PlaceRequest& request,
                    const std::vector<ServerId>& group, int nominal_workers) {
  // (free GPUs, position in group, server id); tuple order reproduces the
  // rescan's first-seen tie-break.
  using Entry = std::tuple<int, std::size_t, ServerId>;
  auto worse = [](const Entry& a, const Entry& b) {
    return std::tie(std::get<0>(a), std::get<1>(a)) >
           std::tie(std::get<0>(b), std::get<1>(b));
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> heap(worse);
  for (std::size_t i = 0; i < group.size(); ++i) {
    const int free = cluster.server(group[i]).free_gpus();
    if (free >= request.gpus_per_worker) {
      heap.push({free, i, group[i]});
    }
  }

  double credit = 0.0;
  while (credit + kCreditEpsilon < static_cast<double>(nominal_workers)) {
    if (heap.empty()) {
      return false;
    }
    auto [free, index, best] = heap.top();
    heap.pop();
    cluster.Place(request.job, best, request.gpus_per_worker, request.flexible);
    credit += ServerWorkerCredit(cluster.server(best));
    free -= request.gpus_per_worker;
    if (free >= request.gpus_per_worker) {
      heap.push({free, index, best});
    }
  }
  return true;
}

// Shared all-or-nothing attempt, without the attempt/failure counters (the
// speculative path must not skew them). Each candidate group is tried under
// a ClusterTransaction: success commits, exhaustion rolls the partial
// placement back and moves on to the next group — the aggregate credit check
// stays as a cheap pre-filter, it no longer has to be exact for safety.
bool TryPlaceWorkersImpl(ClusterState& cluster, const PlaceRequest& request) {
  LYRA_CHECK_GT(request.workers, 0);
  const auto groups = EligibleGroups(cluster, request);
  for (const auto& group : groups) {
    if (GroupCapacityCredit(cluster, group, request.gpus_per_worker) + kCreditEpsilon <
        static_cast<double>(request.workers)) {
      continue;
    }
    ClusterTransaction txn(cluster);
    if (PlaceIntoGroup(cluster, request, group, request.workers)) {
      txn.Commit();
      return true;
    }
    txn.Rollback();
  }
  return false;
}

}  // namespace

bool TryPlaceWorkers(ClusterState& cluster, const PlaceRequest& request) {
  obs::AddCounter("placement.attempts");
  if (TryPlaceWorkersImpl(cluster, request)) {
    obs::AddCounter("placement.workers_placed", static_cast<std::uint64_t>(request.workers));
    return true;
  }
  obs::AddCounter("placement.failures");
  return false;
}

bool WouldPlaceWorkers(ClusterState& cluster, const PlaceRequest& request) {
  obs::AddCounter("placement.speculative_checks");
  ClusterTransaction txn(cluster);
  const bool ok = TryPlaceWorkersImpl(cluster, request);
  txn.Rollback();
  return ok;
}

int CountPlaceableWorkers(const ClusterState& cluster, const PlaceRequest& request) {
  const auto groups = EligibleGroups(cluster, request);
  double best = 0.0;
  for (const auto& group : groups) {
    best = std::max(best, GroupCapacityCredit(cluster, group, request.gpus_per_worker));
  }
  return static_cast<int>(best + kCreditEpsilon);
}

bool CurrentGpuType(const ClusterState& cluster, JobId job, GpuType* type) {
  const JobPlacement* placement = cluster.FindPlacement(job);
  if (placement == nullptr || placement->shares.empty()) {
    return false;
  }
  bool first = true;
  GpuType seen = GpuType::kTrainingV100;
  for (const auto& [server_id, share] : placement->shares) {
    const GpuType t = cluster.server(server_id).gpu_type();
    if (first) {
      seen = t;
      first = false;
    } else if (t != seen) {
      return false;  // mixed
    }
  }
  *type = seen;
  return true;
}

PlacementProfile ProfileFor(const ClusterState& cluster, const Job& job) {
  PlacementProfile profile;
  const JobPlacement* placement = cluster.FindPlacement(job.id());
  if (placement == nullptr) {
    return profile;
  }
  int total_gpus = 0;
  double factor_sum = 0.0;
  bool has_training = false;
  bool has_inference = false;
  for (const auto& [server_id, share] : placement->shares) {
    const Server& srv = cluster.server(server_id);
    total_gpus += share.total();
    factor_sum += share.total() * GpuComputeFactor(srv.gpu_type());
    if (srv.gpu_type() == GpuType::kTrainingV100) {
      has_training = true;
      profile.training_gpus += share.total();
    } else {
      has_inference = true;
      profile.inference_gpus += share.total();
    }
  }
  profile.workers = total_gpus / job.spec().gpus_per_worker;
  profile.mean_gpu_factor = total_gpus > 0 ? factor_sum / total_gpus : 1.0;
  profile.spans_heterogeneous = has_training && has_inference;
  return profile;
}

PlaceRequest BaseRequest(const Job& job, int workers, PoolPreference preference) {
  PlaceRequest request;
  request.job = job.id();
  request.gpus_per_worker = job.spec().gpus_per_worker;
  request.workers = workers;
  request.flexible = false;
  request.fungible = job.spec().fungible;
  request.heterogeneous = job.spec().heterogeneous;
  request.preference = preference;
  return request;
}

PlaceRequest FlexibleRequest(const Job& job, int workers, PoolPreference preference) {
  PlaceRequest request = BaseRequest(job, workers, preference);
  request.flexible = true;
  return request;
}

}  // namespace lyra
