// Gandiva-style opportunistic elastic scheduler (§7.1 baseline).
//
// Gandiva grows or shrinks a job's GPU count opportunistically, without
// cluster-wide optimization: jobs launch at their base demand in arrival
// order; when there are available resources but no pending jobs (the paper's
// definition of under-utilization) running elastic jobs are grown round-robin;
// when pending jobs cannot fit, flexible workers are shrunk to make room.
#ifndef SRC_SCHED_GANDIVA_H_
#define SRC_SCHED_GANDIVA_H_

#include "src/sched/scheduler.h"

namespace lyra {

class GandivaScheduler : public JobScheduler {
 public:
  const char* name() const override { return "Gandiva"; }
  void Schedule(SchedulerContext& ctx) override;
};

}  // namespace lyra

#endif  // SRC_SCHED_GANDIVA_H_
