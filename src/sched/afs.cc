#include "src/sched/afs.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/sched/elastic_util.h"
#include "src/sched/placement_util.h"
#include "src/workload/throughput.h"

namespace lyra {
namespace {

// Normalized marginal throughput per GPU of giving the job its (w+1)-th
// worker, from its model-family scaling curve.
double MarginalGainPerGpu(const Job& job, int current_workers) {
  const ModelScalingCurve curve = CurveFor(job.spec().model);
  const double gain = curve.ThroughputAt(current_workers + 1) -
                      curve.ThroughputAt(current_workers);
  const double unit = curve.ThroughputAt(1);
  return gain / unit / job.spec().gpus_per_worker;
}

}  // namespace

void AfsScheduler::Schedule(SchedulerContext& ctx) {
  obs::PhaseSpan placement_span(obs::Phase::kPlacement);
  ClusterState& cluster = *ctx.cluster;
  const PoolPreference pref = ctx.allow_loaned_placement
                                  ? PoolPreference::kTrainingFirst
                                  : PoolPreference::kTrainingOnly;

  // Base demand first, in arrival order, shrinking flexible workers to make
  // room (AFS continuously re-balances the elastic share).
  std::vector<Job*> order = ctx.pending;
  std::stable_sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    return a->spec().submit_time < b->spec().submit_time;
  });
  for (Job* job : order) {
    PlaceRequest request = BaseRequest(*job, job->spec().min_workers, pref);
    if (TryPlaceWorkers(cluster, request)) {
      continue;
    }
    HarvestFlexibleGpus(cluster, ctx.running,
                        job->spec().min_workers * job->spec().gpus_per_worker);
    TryPlaceWorkers(cluster, request);
  }

  // Greedy marginal allocation: repeatedly add one worker to the elastic job
  // with the largest throughput gain per GPU until nothing fits.
  std::vector<Job*> elastic;
  auto consider = [&](Job* job) {
    if (job->spec().elastic() && PlacedWorkers(cluster, *job) > 0) {
      elastic.push_back(job);
    }
  };
  for (Job* job : ctx.running) {
    consider(job);
  }
  for (Job* job : order) {
    consider(job);  // newly launched this epoch
  }

  while (true) {
    Job* best = nullptr;
    double best_gain = 0.0;
    for (Job* job : elastic) {
      const int workers = PlacedWorkers(cluster, *job);
      if (workers >= job->spec().max_workers) {
        continue;
      }
      const double gain = MarginalGainPerGpu(*job, workers);
      if (gain > best_gain) {
        best_gain = gain;
        best = job;
      }
    }
    if (best == nullptr) {
      break;
    }
    if (!TryPlaceWorkers(cluster, FlexibleRequest(*best, 1, pref))) {
      break;
    }
  }
}

}  // namespace lyra
