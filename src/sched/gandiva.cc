#include "src/sched/gandiva.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/sched/elastic_util.h"
#include "src/sched/placement_util.h"

namespace lyra {

void GandivaScheduler::Schedule(SchedulerContext& ctx) {
  obs::PhaseSpan placement_span(obs::Phase::kPlacement);
  ClusterState& cluster = *ctx.cluster;
  const PoolPreference pref = ctx.allow_loaned_placement
                                  ? PoolPreference::kTrainingFirst
                                  : PoolPreference::kTrainingOnly;

  std::vector<Job*> order = ctx.pending;
  std::stable_sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    return a->spec().submit_time < b->spec().submit_time;
  });

  // Launch pending jobs at base demand; shrink flexible workers of running
  // jobs opportunistically when a pending job does not fit.
  bool all_placed = true;
  for (Job* job : order) {
    const int workers = job->spec().min_workers;
    PlaceRequest request = BaseRequest(*job, workers, pref);
    if (TryPlaceWorkers(cluster, request)) {
      continue;
    }
    const int gpus_needed = workers * job->spec().gpus_per_worker;
    HarvestFlexibleGpus(cluster, ctx.running, gpus_needed);
    if (!TryPlaceWorkers(cluster, request)) {
      all_placed = false;
    }
  }

  // Under-utilization: available resources and no pending work => grow
  // elastic jobs round-robin, one worker at a time.
  if (!all_placed) {
    return;
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (Job* job : ctx.running) {
      if (!job->spec().elastic()) {
        continue;
      }
      const int current = PlacedWorkers(cluster, *job);
      if (current == 0 || current >= job->spec().max_workers) {
        continue;
      }
      if (TryPlaceWorkers(cluster, FlexibleRequest(*job, 1, pref))) {
        grew = true;
      }
    }
  }
}

}  // namespace lyra
