// Opportunistic scheduling baseline (§7.1, Table 5 row 6).
//
// Capacity loaning is disabled as a coordinated mechanism; instead the 21%
// fungible jobs are queued to the inference cluster at lower priority than
// inference work, blindly using whatever servers happen to be idle. In the
// simulator the idle inference servers are exposed through the same on-loan
// pool, but fungible jobs may ONLY use that pool while non-fungible jobs stay
// on training servers — the defining inefficiency of the scheme (§7.3).
#ifndef SRC_SCHED_OPPORTUNISTIC_H_
#define SRC_SCHED_OPPORTUNISTIC_H_

#include "src/sched/scheduler.h"

namespace lyra {

class OpportunisticScheduler : public JobScheduler {
 public:
  // `patience` bounds how long a fungible job waits for idle inference
  // capacity before its owner falls back to the training queue (production
  // users resubmit rather than starve through a traffic peak).
  explicit OpportunisticScheduler(TimeSec patience = 2 * kHour) : patience_(patience) {}

  const char* name() const override { return "Opportunistic"; }
  void Schedule(SchedulerContext& ctx) override;

 private:
  TimeSec patience_;
};

}  // namespace lyra

#endif  // SRC_SCHED_OPPORTUNISTIC_H_
