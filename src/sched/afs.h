// AFS-style elastic scheduler (§7.1 baseline).
//
// AFS greedily prioritizes jobs with the highest marginal throughput gain per
// GPU. Following the paper's adaptation: every job first receives its base
// demand; remaining GPUs are then handed out one worker at a time to the
// elastic job whose next worker yields the largest throughput gain per GPU
// (using the job's model-family scaling curve).
#ifndef SRC_SCHED_AFS_H_
#define SRC_SCHED_AFS_H_

#include "src/sched/scheduler.h"

namespace lyra {

class AfsScheduler : public JobScheduler {
 public:
  const char* name() const override { return "AFS"; }
  void Schedule(SchedulerContext& ctx) override;
};

}  // namespace lyra

#endif  // SRC_SCHED_AFS_H_
