// Helpers for manipulating the flexible (beyond-base) demand of elastic jobs.
#ifndef SRC_SCHED_ELASTIC_UTIL_H_
#define SRC_SCHED_ELASTIC_UTIL_H_

#include <vector>

#include "src/cluster/cluster_state.h"
#include "src/workload/job.h"

namespace lyra {

// Current worker count of a placed job (0 if unplaced).
int PlacedWorkers(const ClusterState& cluster, const Job& job);

// Current flexible worker count of a placed job.
int PlacedFlexibleWorkers(const ClusterState& cluster, const Job& job);

// Scales the job's flexible demand down to `target_flex_workers` by removing
// flexible GPUs server by server. Returns the number of GPUs released.
int ShrinkFlexibleTo(ClusterState& cluster, const Job& job, int target_flex_workers);

// Removes flexible workers across `running` jobs (one worker at a time,
// round-robin) until at least `gpus_needed` GPUs are free in the training-
// visible pools or no flexible workers remain. Returns GPUs released.
int HarvestFlexibleGpus(ClusterState& cluster, const std::vector<Job*>& running,
                        int gpus_needed);

}  // namespace lyra

#endif  // SRC_SCHED_ELASTIC_UTIL_H_
