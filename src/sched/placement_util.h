// Placement primitives shared by all schedulers.
//
// Placement is per-worker: a worker occupies gpus_per_worker GPUs on one
// server (workers never span servers). Jobs that are not heterogeneous-
// capable must keep all workers on a single GPU type per run (§2.1), so a
// placement attempt picks one eligible pool group; heterogeneous jobs may mix.
#ifndef SRC_SCHED_PLACEMENT_UTIL_H_
#define SRC_SCHED_PLACEMENT_UTIL_H_

#include <vector>

#include "src/cluster/cluster_state.h"
#include "src/workload/job.h"
#include "src/workload/throughput.h"

namespace lyra {

// Where a job's new workers may go, in preference order.
enum class PoolPreference {
  kTrainingFirst,  // training servers, then on-loan if the job is fungible
  kLoanedFirst,    // on-loan servers (if fungible), then training
  kTrainingOnly,
  kLoanedOnly,
};

struct PlaceRequest {
  JobId job;
  int gpus_per_worker = 1;
  int workers = 0;        // how many workers to place in this call
  bool flexible = false;  // mark the GPUs as flexible (elastic beyond base)
  bool fungible = false;
  bool heterogeneous = false;
  PoolPreference preference = PoolPreference::kTrainingFirst;
};

// Attempts to place all requested workers using best-fit-decreasing within
// the eligible servers; all-or-nothing. Returns true on success.
//
// For non-heterogeneous jobs the placement keeps GPU types uniform *per
// request*; callers that grow a job must keep follow-up requests on the same
// GPU type the job already occupies (see CurrentGpuType).
bool TryPlaceWorkers(ClusterState& cluster, const PlaceRequest& request);

// Exact speculative feasibility check: would TryPlaceWorkers succeed right
// now? Runs the real placement inside a ClusterTransaction and rolls it
// back, so the answer accounts for fragmentation and type pinning — unlike
// CountPlaceableWorkers, which is an aggregate-capacity estimate. The
// cluster is unchanged on return.
bool WouldPlaceWorkers(ClusterState& cluster, const PlaceRequest& request);

// Counts how many additional workers of the given shape could be placed.
int CountPlaceableWorkers(const ClusterState& cluster, const PlaceRequest& request);

// The GPU type a placed job currently runs on, if it is uniform; returns
// true and sets *type, or returns false if unplaced or mixed.
bool CurrentGpuType(const ClusterState& cluster, JobId job, GpuType* type);

// Derives the job's throughput-relevant placement profile from the cluster.
PlacementProfile ProfileFor(const ClusterState& cluster, const Job& job);

// Convenience: a PlaceRequest for launching `workers` base workers of `job`.
PlaceRequest BaseRequest(const Job& job, int workers,
                         PoolPreference preference = PoolPreference::kTrainingFirst);

// Convenience: a PlaceRequest for growing `job` by `workers` flexible workers.
PlaceRequest FlexibleRequest(const Job& job, int workers,
                             PoolPreference preference = PoolPreference::kTrainingFirst);

}  // namespace lyra

#endif  // SRC_SCHED_PLACEMENT_UTIL_H_
