// Pollux-style goodput scheduler (§7.1 baseline).
//
// Pollux computes a goodput for each training job — throughput from its
// scaling curve times a statistical efficiency that decays as training
// progresses — and searches for a cluster-wide allocation with a genetic
// algorithm. It co-tunes batch size and learning rate with the allocation
// (modeled by the tuned-job throughput behaviour). Following the paper's
// adaptation to the non-preemptive setting, the search only resizes the
// flexible demand of elastic jobs; running jobs never drop below base demand.
#ifndef SRC_SCHED_POLLUX_H_
#define SRC_SCHED_POLLUX_H_

#include "src/common/rng.h"
#include "src/sched/scheduler.h"

namespace lyra {

struct PolluxOptions {
  // Genetic-algorithm budget. The paper notes Pollux's preset 100 iterations
  // are insufficient at 3,500-GPU scale and uses 250 to keep overhead
  // acceptable (§7.4).
  int iterations = 250;
  int population = 32;
  double mutation_prob = 0.3;
  // Minimum spacing between full GA runs; between runs only base-demand
  // launches happen (Pollux reschedules on a fixed interval).
  TimeSec ga_interval = 5 * kMinute;
  std::uint64_t seed = 1234;
};

class PolluxScheduler : public JobScheduler {
 public:
  explicit PolluxScheduler(PolluxOptions options = {});

  const char* name() const override { return "Pollux"; }
  bool tunes_hyperparameters() const override { return true; }
  void Schedule(SchedulerContext& ctx) override;

 private:
  void RunGeneticAllocation(SchedulerContext& ctx, const std::vector<Job*>& elastic);

  PolluxOptions options_;
  Rng rng_;
  TimeSec last_ga_run_ = -1e18;
};

}  // namespace lyra

#endif  // SRC_SCHED_POLLUX_H_
