// Job-scheduler interface shared by Lyra and all baseline schedulers.
//
// A scheduler runs at every scheduling epoch (§5.2: myopic, periodic, high
// frequency). It sees the pending queue and the running jobs, and mutates
// worker placements directly on the ClusterState. The simulator then derives
// each job's new throughput from its placement, so schedulers never touch job
// progress state. Scheduling is non-preemptive: schedulers may launch pending
// jobs and resize the *flexible* (beyond-base) demand of elastic jobs, but
// may not remove base workers — that only happens during reclaiming (§4).
#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <vector>

#include "src/cluster/cluster_state.h"
#include "src/workload/job.h"
#include "src/workload/throughput.h"

namespace lyra {

struct SchedulerContext {
  TimeSec now = 0.0;
  ClusterState* cluster = nullptr;
  // Pending jobs in submission order (includes preempted jobs re-queued).
  std::vector<Job*> pending;
  // All currently running jobs.
  std::vector<Job*> running;
  const ThroughputModel* throughput = nullptr;
  // Whether the scenario lets the scheduler place fungible jobs on on-loan
  // servers. False in the elastic-scaling-only studies (§7.4).
  bool allow_loaned_placement = true;
};

class JobScheduler {
 public:
  virtual ~JobScheduler() = default;

  virtual const char* name() const = 0;

  // Runs one scheduling epoch, mutating placements on ctx.cluster.
  virtual void Schedule(SchedulerContext& ctx) = 0;

  // Whether this scheduler re-tunes job hyperparameters (batch size /
  // learning rate) on allocation changes, Pollux-style (§7.4). The simulator
  // applies the corresponding throughput behaviour to elastic jobs.
  virtual bool tunes_hyperparameters() const { return false; }
};

}  // namespace lyra

#endif  // SRC_SCHED_SCHEDULER_H_
