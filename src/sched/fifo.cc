#include "src/sched/fifo.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/sched/placement_util.h"

namespace lyra {
namespace {

void LaunchInOrder(SchedulerContext& ctx, std::vector<Job*> order) {
  obs::PhaseSpan placement_span(obs::Phase::kPlacement);
  for (Job* job : order) {
    const int workers = job->spec().RequestedWorkers();
    PlaceRequest request = BaseRequest(*job, workers, PoolPreference::kTrainingFirst);
    if (!ctx.allow_loaned_placement) {
      request.preference = PoolPreference::kTrainingOnly;
    }
    TryPlaceWorkers(*ctx.cluster, request);
  }
}

}  // namespace

void FifoScheduler::Schedule(SchedulerContext& ctx) {
  std::vector<Job*> order = ctx.pending;
  std::stable_sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    return a->spec().submit_time < b->spec().submit_time;
  });
  LaunchInOrder(ctx, std::move(order));
}

void SjfScheduler::Schedule(SchedulerContext& ctx) {
  std::vector<Job*> order = ctx.pending;
  std::stable_sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    return a->EstimatedRemainingTime(a->spec().max_workers) <
           b->EstimatedRemainingTime(b->spec().max_workers);
  });
  LaunchInOrder(ctx, std::move(order));
}

}  // namespace lyra
