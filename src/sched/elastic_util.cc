#include "src/sched/elastic_util.h"

#include <cmath>

#include "src/common/check.h"

namespace lyra {
namespace {

constexpr double kCreditEpsilon = 1e-9;

// Nominal (training-GPU-equivalent) worker credit of a share on a server: a
// worker on inference GPUs counts its compute factor, matching the capacity
// normalization of §5.2.
double ShareWorkerCredit(const ClusterState& cluster, ServerId server_id, int gpus,
                         int gpus_per_worker) {
  return static_cast<double>(gpus) / gpus_per_worker *
         GpuComputeFactor(cluster.server(server_id).gpu_type());
}

}  // namespace

int PlacedWorkers(const ClusterState& cluster, const Job& job) {
  const JobPlacement* placement = cluster.FindPlacement(job.id());
  if (placement == nullptr) {
    return 0;
  }
  double credit = 0.0;
  for (const auto& [server_id, share] : placement->shares) {
    credit += ShareWorkerCredit(cluster, server_id, share.total(),
                                job.spec().gpus_per_worker);
  }
  return static_cast<int>(std::floor(credit + 0.5));
}

int PlacedFlexibleWorkers(const ClusterState& cluster, const Job& job) {
  const JobPlacement* placement = cluster.FindPlacement(job.id());
  if (placement == nullptr) {
    return 0;
  }
  double credit = 0.0;
  for (const auto& [server_id, share] : placement->shares) {
    credit += ShareWorkerCredit(cluster, server_id, share.flexible_gpus,
                                job.spec().gpus_per_worker);
  }
  return static_cast<int>(std::floor(credit + 0.5));
}

int ShrinkFlexibleTo(ClusterState& cluster, const Job& job, int target_flex_workers) {
  LYRA_CHECK_GE(target_flex_workers, 0);
  const int gpw = job.spec().gpus_per_worker;
  const JobPlacement* placement = cluster.FindPlacement(job.id());
  if (placement == nullptr) {
    return 0;
  }
  double flex_credit = 0.0;
  std::vector<ServerId> servers;
  for (const auto& [server_id, share] : placement->shares) {
    if (share.flexible_gpus > 0) {
      flex_credit += ShareWorkerCredit(cluster, server_id, share.flexible_gpus, gpw);
      servers.push_back(server_id);
    }
  }
  int released = 0;
  // Remove one physical flexible worker at a time until within target.
  for (ServerId server_id : servers) {
    const double credit_per_worker =
        GpuComputeFactor(cluster.server(server_id).gpu_type());
    while (flex_credit - kCreditEpsilon > static_cast<double>(target_flex_workers)) {
      const int removed = cluster.RemoveFlexible(job.id(), server_id, gpw);
      if (removed == 0) {
        break;  // nothing flexible left on this server
      }
      released += removed;
      flex_credit -= static_cast<double>(removed) / gpw * credit_per_worker;
    }
    if (flex_credit - kCreditEpsilon <= static_cast<double>(target_flex_workers)) {
      break;
    }
  }
  return released;
}

int HarvestFlexibleGpus(ClusterState& cluster, const std::vector<Job*>& running,
                        int gpus_needed) {
  int released = 0;
  bool progress = true;
  while (released < gpus_needed && progress) {
    progress = false;
    for (Job* job : running) {
      if (released >= gpus_needed) {
        break;
      }
      const int flex = PlacedFlexibleWorkers(cluster, *job);
      if (flex > 0) {
        const int freed = ShrinkFlexibleTo(cluster, *job, flex - 1);
        released += freed;
        progress = progress || freed > 0;
      }
    }
  }
  return released;
}

}  // namespace lyra
